#include "schemes/mst.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/mst.hpp"
#include "testing/helpers.hpp"

namespace pls::schemes {
namespace {

using pls::testing::share;

std::shared_ptr<const graph::Graph> weighted(std::size_t n, std::size_t extra,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t max_extra = n * (n - 1) / 2 - (n - 1);
  extra = std::min(extra, max_extra);
  return share(
      graph::reweight_random(graph::random_connected(n, extra, rng), rng));
}

TEST(MstLanguage, TrueMstAccepted) {
  const MstLanguage language;
  util::Rng rng(1);
  auto g = weighted(12, 10, 2);
  EXPECT_TRUE(language.contains(language.sample_legal(g, rng)));
}

TEST(MstLanguage, NonMstSpanningTreeRejected) {
  const MstLanguage language;
  util::Rng rng(3);
  auto g = weighted(10, 12, 4);
  // Build a spanning tree that is NOT the MST: swap one MST edge for the
  // heaviest edge closing a different connection.
  std::vector<bool> mst(g->m(), false);
  for (const graph::EdgeIndex e : graph::kruskal(*g)) mst[e] = true;
  // Find a non-MST edge and an MST edge on the cycle it closes.
  for (graph::EdgeIndex e = 0; e < g->m(); ++e) {
    if (mst[e]) continue;
    std::vector<bool> candidate = mst;
    candidate[e] = true;
    // Remove some MST edge on the unique cycle: try them all.
    for (graph::EdgeIndex f = 0; f < g->m(); ++f) {
      if (!mst[f] || f == e) continue;
      candidate[f] = false;
      if (graph::is_spanning_tree(*g, candidate)) {
        EXPECT_FALSE(language.contains(language.make_from_mask(g, candidate)));
        return;
      }
      candidate[f] = true;
    }
  }
  FAIL() << "no alternative spanning tree found";
}

TEST(MstLanguage, RequiresDistinctWeights) {
  const MstLanguage language;
  auto g = share(graph::path(3));  // all weights 1
  std::vector<bool> all(g->m(), true);
  EXPECT_FALSE(language.contains(language.make_from_mask(g, all)));
}

class MstCompleteness
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MstCompleteness, MarkerVerifies) {
  const auto [n, extra, seed] = GetParam();
  const MstLanguage language;
  const MstScheme scheme(language);
  util::Rng rng(static_cast<std::uint64_t>(seed));
  auto g = weighted(static_cast<std::size_t>(n),
                    static_cast<std::size_t>(extra),
                    static_cast<std::uint64_t>(seed));
  pls::testing::expect_complete(scheme, language.sample_legal(g, rng));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MstCompleteness,
    ::testing::Combine(::testing::Values(2, 3, 4, 9, 25, 64),
                       ::testing::Values(0, 8, 30),
                       ::testing::Values(1, 2, 3)));

TEST(MstScheme, CompletenessOnSpecialGraphs) {
  const MstLanguage language;
  const MstScheme scheme(language);
  util::Rng rng(5);
  for (auto base : {graph::path(9), graph::cycle(10), graph::complete(8),
                    graph::grid(4, 4), graph::star(9)}) {
    auto g = share(graph::reweight_random(base, rng));
    pls::testing::expect_complete(scheme, language.sample_legal(g, rng));
  }
}

TEST(MstScheme, ProofSizeWithinLogSquaredBound) {
  const MstLanguage language;
  const MstScheme scheme(language);
  util::Rng rng(7);
  for (const std::size_t n : {4u, 16u, 64u, 256u}) {
    auto g = weighted(n, n, n);
    const auto cfg = language.sample_legal(g, rng);
    const core::Labeling lab = scheme.mark(cfg);
    EXPECT_LE(lab.max_bits(), scheme.proof_size_bound(n, cfg.max_state_bits()))
        << "n=" << n;
  }
}

TEST(MstScheme, SoundOnEdgeSwappedTree) {
  const MstLanguage language;
  const MstScheme scheme(language);
  auto g = weighted(10, 14, 11);
  std::vector<bool> mst(g->m(), false);
  for (const graph::EdgeIndex e : graph::kruskal(*g)) mst[e] = true;
  for (graph::EdgeIndex e = 0; e < g->m(); ++e) {
    if (mst[e]) continue;
    std::vector<bool> candidate = mst;
    candidate[e] = true;
    for (graph::EdgeIndex f = 0; f < g->m(); ++f) {
      if (!mst[f] || f == e) continue;
      candidate[f] = false;
      if (graph::is_spanning_tree(*g, candidate)) {
        pls::testing::expect_sound(scheme,
                                   language.make_from_mask(g, candidate), 13);
        return;
      }
      candidate[f] = true;
    }
  }
  FAIL() << "no alternative spanning tree found";
}

TEST(MstScheme, SoundOnForest) {
  const MstLanguage language;
  const MstScheme scheme(language);
  auto g = weighted(12, 8, 17);
  std::vector<bool> mst(g->m(), false);
  for (const graph::EdgeIndex e : graph::kruskal(*g)) mst[e] = true;
  // Drop one MST edge: a forest, not spanning.
  for (graph::EdgeIndex e = 0; e < g->m(); ++e)
    if (mst[e]) {
      mst[e] = false;
      break;
    }
  pls::testing::expect_sound(scheme, language.make_from_mask(g, mst), 19);
}

TEST(MstScheme, SoundOnRandomBfsTree) {
  const MstLanguage language;
  const MstScheme scheme(language);
  util::Rng rng(23);
  auto g = weighted(14, 20, 23);
  // A BFS spanning tree is almost never the MST on this instance.
  const graph::BfsResult tree = graph::bfs(*g, 0);
  std::vector<bool> mask(g->m(), false);
  for (graph::NodeIndex v = 1; v < g->n(); ++v) {
    const auto e = g->find_edge(v, tree.parent[v]);
    ASSERT_TRUE(e.has_value());
    mask[*e] = true;
  }
  const auto cfg = language.make_from_mask(g, mask);
  if (!language.contains(cfg)) pls::testing::expect_sound(scheme, cfg, 29);
}

TEST(MstScheme, HonestCertsOnWrongTreeRejected) {
  // Present the marker's certificates for the true MST while the states
  // claim a different tree: the coverage check must fire.
  const MstLanguage language;
  const MstScheme scheme(language);
  auto g = weighted(10, 12, 31);
  const auto mst_cfg = [&] {
    util::Rng rng(1);
    return language.sample_legal(g, rng);
  }();
  const core::Labeling honest = scheme.mark(mst_cfg);

  std::vector<bool> mst(g->m(), false);
  for (const graph::EdgeIndex e : graph::kruskal(*g)) mst[e] = true;
  for (graph::EdgeIndex e = 0; e < g->m(); ++e) {
    if (mst[e]) continue;
    std::vector<bool> candidate = mst;
    candidate[e] = true;
    for (graph::EdgeIndex f = 0; f < g->m(); ++f) {
      if (!mst[f] || f == e) continue;
      candidate[f] = false;
      if (graph::is_spanning_tree(*g, candidate)) {
        const auto cfg = language.make_from_mask(g, candidate);
        EXPECT_GE(core::run_verifier(scheme, cfg, honest).rejections(), 1u);
        return;
      }
      candidate[f] = true;
    }
  }
  FAIL() << "no alternative spanning tree found";
}

TEST(MstScheme, PhaseRecordsLogarithmic) {
  const MstLanguage language;
  const MstScheme scheme(language);
  util::Rng rng(37);
  for (const std::size_t n : {2u, 8u, 32u, 128u}) {
    auto g = weighted(n, n / 2, n + 1);
    const auto cfg = language.sample_legal(g, rng);
    std::size_t bound = 1, frags = n;
    while (frags > 1) {
      frags = (frags + 1) / 2;
      ++bound;
    }
    EXPECT_LE(scheme.phase_records(cfg), bound) << "n=" << n;
  }
}

TEST(MstScheme, TinyInstances) {
  const MstLanguage language;
  const MstScheme scheme(language);
  util::Rng rng(41);
  // n = 1: the empty tree certifies trivially.
  auto g1 = share(graph::path(1));
  pls::testing::expect_complete(scheme, language.sample_legal(g1, rng));
  // n = 2: one edge.
  auto g2 = share(graph::reweight_random(graph::path(2), rng));
  pls::testing::expect_complete(scheme, language.sample_legal(g2, rng));
}

}  // namespace
}  // namespace pls::schemes
