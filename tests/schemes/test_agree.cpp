#include "schemes/agree.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"

namespace pls::schemes {
namespace {

using pls::testing::share;

TEST(AgreeLanguage, ContainsUniformConfigurations) {
  const AgreeLanguage language(8);
  auto g = share(graph::cycle(5));
  std::vector<local::State> states(5, language.encode_value(42));
  EXPECT_TRUE(language.contains(local::Configuration(g, states)));
}

TEST(AgreeLanguage, RejectsDisagreement) {
  const AgreeLanguage language(8);
  auto g = share(graph::path(3));
  std::vector<local::State> states(3, language.encode_value(1));
  states[1] = language.encode_value(2);
  EXPECT_FALSE(language.contains(local::Configuration(g, states)));
}

TEST(AgreeLanguage, RejectsWrongWidthStates) {
  const AgreeLanguage language(8);
  auto g = share(graph::path(2));
  std::vector<local::State> states(2, local::State::of_uint(1, 7));
  EXPECT_FALSE(language.contains(local::Configuration(g, states)));
}

TEST(AgreeLanguage, SampleLegalIsLegal) {
  const AgreeLanguage language(16);
  for (auto& g : pls::testing::unweighted_family(3)) {
    util::Rng rng(5);
    EXPECT_TRUE(language.contains(language.sample_legal(g, rng)));
  }
}

TEST(AgreeScheme, CompletenessSweep) {
  const AgreeLanguage language(16);
  const AgreeScheme scheme(language);
  for (auto& g : pls::testing::unweighted_family(7)) {
    util::Rng rng(9);
    pls::testing::expect_complete(scheme, language.sample_legal(g, rng));
  }
}

TEST(AgreeScheme, ProofSizeIsExactlyStateSize) {
  for (const unsigned bits : {1u, 8u, 32u, 64u}) {
    const AgreeLanguage language(bits);
    const AgreeScheme scheme(language);
    auto g = share(graph::path(4));
    util::Rng rng(11);
    const auto cfg = language.sample_legal(g, rng);
    EXPECT_EQ(scheme.mark(cfg).max_bits(), bits);
    EXPECT_EQ(scheme.proof_size_bound(4, bits), bits);
  }
}

TEST(AgreeScheme, StrictVisibility) {
  const AgreeLanguage language(8);
  const AgreeScheme scheme(language);
  EXPECT_EQ(scheme.visibility(), local::Visibility::kCertificatesOnly);
}

TEST(AgreeScheme, SoundOnSplitValues) {
  const AgreeLanguage language(8);
  const AgreeScheme scheme(language);
  auto g = share(graph::path(6));
  std::vector<local::State> states(6, language.encode_value(10));
  for (int i = 3; i < 6; ++i) states[i] = language.encode_value(20);
  pls::testing::expect_sound(scheme, local::Configuration(g, states), 13);
}

TEST(AgreeScheme, BoundaryNodesRejectWithHonestHybrids) {
  // Give each side its own honest certificate: exactly the two nodes at the
  // value boundary reject (they see the other value's certificate).
  const AgreeLanguage language(8);
  const AgreeScheme scheme(language);
  auto g = share(graph::path(6));
  std::vector<local::State> states(6, language.encode_value(10));
  for (int i = 3; i < 6; ++i) states[i] = language.encode_value(20);
  const local::Configuration cfg(g, states);
  core::Labeling hybrid;
  for (int i = 0; i < 6; ++i) hybrid.certs.push_back(cfg.state(i));
  const core::Verdict verdict = core::run_verifier(scheme, cfg, hybrid);
  EXPECT_EQ(verdict.rejections(), 2u);
  EXPECT_FALSE(verdict.accept()[2]);
  EXPECT_FALSE(verdict.accept()[3]);
}

TEST(AgreeScheme, TamperedCertificateRejectsAtOwner) {
  const AgreeLanguage language(8);
  const AgreeScheme scheme(language);
  auto g = share(graph::cycle(5));
  util::Rng rng(17);
  const auto cfg = language.sample_legal(g, rng);
  core::Labeling lab = scheme.mark(cfg);
  lab.certs[2] = local::Certificate::of_uint(0xAB, 8);
  const core::Verdict verdict = core::run_verifier(scheme, cfg, lab);
  EXPECT_GE(verdict.rejections(), 1u);
}

TEST(AgreeScheme, ExhaustiveSoundnessTiny) {
  const AgreeLanguage language(2);
  const AgreeScheme scheme(language);
  auto g = share(graph::path(3));
  std::vector<local::State> states = {language.encode_value(0),
                                      language.encode_value(1),
                                      language.encode_value(0)};
  EXPECT_GE(core::exhaustive_min_rejections(
                scheme, local::Configuration(g, states), 3),
            1u);
}

}  // namespace
}  // namespace pls::schemes
