#include "schemes/distributed_marker.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "schemes/leader.hpp"
#include "schemes/spanning_tree.hpp"
#include "testing/helpers.hpp"

namespace pls::schemes {
namespace {

using pls::testing::share;

TEST(DistributedLeaderMarking, VerifierAcceptsTheDistributedCertificates) {
  const LeaderLanguage language;
  const LeaderScheme scheme(language);
  for (auto& g : pls::testing::unweighted_family(3)) {
    util::Rng rng(5);
    const auto cfg = language.sample_legal(g, rng);
    const DistributedMarking marking = distributed_leader_marking(cfg);
    EXPECT_TRUE(core::run_verifier(scheme, cfg, marking.labeling).all_accept())
        << g->describe();
  }
}

TEST(DistributedLeaderMarking, RoundsTrackEccentricity) {
  const LeaderLanguage language;
  auto g = share(graph::path(32));
  const auto cfg = language.make_with_leader(g, 0);
  const DistributedMarking marking = distributed_leader_marking(cfg);
  // Flooding from one end of a 32-path: 31 rounds to reach the far end,
  // plus the quiescence-confirming round.
  EXPECT_GE(marking.rounds, 31u);
  EXPECT_LE(marking.rounds, 33u);
  EXPECT_GT(marking.message_bits, 0u);
}

TEST(DistributedLeaderMarking, CertificatesMatchCentralizedDistances) {
  const LeaderLanguage language;
  auto g = share(graph::grid(4, 5));
  const auto cfg = language.make_with_leader(g, 7);
  const DistributedMarking marking = distributed_leader_marking(cfg);
  const graph::BfsResult truth = graph::bfs(*g, 7);
  for (graph::NodeIndex v = 0; v < g->n(); ++v) {
    util::BitReader r = marking.labeling.certs[v].reader();
    const auto root = r.read_varint();
    (void)r.read_varint();  // parent: any min-dist neighbor is fine
    const auto dist = r.read_varint();
    ASSERT_TRUE(root && dist);
    EXPECT_EQ(*root, g->id(7));
    EXPECT_EQ(*dist, truth.dist[v]);
  }
}

TEST(DistributedStpMarking, VerifierAcceptsTheDistributedCertificates) {
  const StpLanguage language;
  const StpScheme scheme(language);
  for (auto& g : pls::testing::unweighted_family(7)) {
    util::Rng rng(11);
    const auto cfg = language.sample_legal(g, rng);
    const DistributedMarking marking = distributed_stp_marking(cfg);
    EXPECT_TRUE(core::run_verifier(scheme, cfg, marking.labeling).all_accept())
        << g->describe();
  }
}

TEST(DistributedStpMarking, RoundsTrackTreeDepth) {
  const StpLanguage language;
  auto g = share(graph::path(24));
  const auto cfg = language.make_tree(g, 0);  // depth 23 chain
  const DistributedMarking marking = distributed_stp_marking(cfg);
  EXPECT_GE(marking.rounds, 23u);
  EXPECT_LE(marking.rounds, 25u);
}

TEST(DistributedStpMarking, MatchesCentralizedMarkerBitForBit) {
  // For stp the certificate is fully determined by the pointer tree, so the
  // distributed and centralized markers must agree exactly.
  const StpLanguage language;
  const StpScheme scheme(language);
  auto g = share(graph::grid(3, 4));
  const auto cfg = language.make_tree(g, 5);
  const DistributedMarking distributed = distributed_stp_marking(cfg);
  const core::Labeling centralized = scheme.mark(cfg);
  ASSERT_EQ(distributed.labeling.size(), centralized.size());
  for (graph::NodeIndex v = 0; v < cfg.n(); ++v)
    EXPECT_EQ(distributed.labeling.certs[v], centralized.certs[v]) << v;
}

TEST(DistributedMarking, SingleNodeNetworks) {
  const LeaderLanguage leader;
  auto g = share(graph::path(1));
  const auto cfg = leader.make_with_leader(g, 0);
  const DistributedMarking marking = distributed_leader_marking(cfg);
  EXPECT_LE(marking.rounds, 1u);
  const LeaderScheme scheme(leader);
  EXPECT_TRUE(core::run_verifier(scheme, cfg, marking.labeling).all_accept());
}

}  // namespace
}  // namespace pls::schemes
