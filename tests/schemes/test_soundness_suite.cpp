// The cross-cutting property test: for every scheme in the catalog, on every
// instance family, random corruptions that leave the language are always
// detected by at least one node, no matter which adversary assigns the
// certificates.  This is the soundness half of the PLS contract exercised
// broadly rather than per-scheme.
#include <gtest/gtest.h>

#include "pls/adversary.hpp"
#include "schemes/registry.hpp"
#include "testing/helpers.hpp"

namespace pls::schemes {
namespace {

using pls::testing::share;

struct SuiteCase {
  std::string label;
  std::uint64_t seed;
};

class SoundnessSuite : public ::testing::TestWithParam<int> {};

TEST_P(SoundnessSuite, CorruptedConfigurationsAreDetected) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  util::Rng rng(seed);
  const auto catalog = standard_catalog();

  for (const SchemeEntry& entry : catalog) {
    std::vector<std::shared_ptr<const graph::Graph>> graphs;
    if (entry.needs_weighted) {
      graphs.push_back(share(graph::reweight_random(
          graph::random_connected(12, 10, rng), rng)));
      graphs.push_back(share(graph::reweight_random(graph::cycle(9), rng)));
    } else if (entry.needs_bipartite) {
      graphs.push_back(share(graph::grid(3, 4)));
      graphs.push_back(share(graph::cycle(8)));
    } else {
      graphs.push_back(share(graph::random_connected(12, 8, rng)));
      graphs.push_back(share(graph::grid(3, 4)));
    }

    for (auto& g : graphs) {
      const local::Configuration legal =
          entry.language->sample_legal(g, rng);
      ASSERT_TRUE(entry.language->contains(legal)) << entry.label;

      // Try several corruption strengths; keep the ones that leave L.
      for (const std::size_t k : {1u, 2u, 4u}) {
        if (k > legal.n()) continue;
        const local::CorruptionResult corrupted =
            local::corrupt_random_states(legal, k, rng);
        if (entry.language->contains(corrupted.config)) continue;
        core::AttackOptions options;
        options.hill_climb_steps = 120;
        options.random_trials = 4;
        options.splice_sources = 2;
        util::Rng attack_rng(seed * 1000 + k);
        const core::AttackReport report = core::attack(
            *entry.scheme, corrupted.config, attack_rng, options);
        EXPECT_GE(report.min_rejections, 1u)
            << entry.label << " fooled by '" << report.best_strategy
            << "' with k=" << k << " on " << g->describe();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessSuite, ::testing::Range(1, 6));

TEST(CompletenessSuite, EveryCatalogSchemeAcceptsItsWitnesses) {
  util::Rng rng(99);
  const auto catalog = standard_catalog();
  for (const SchemeEntry& entry : catalog) {
    std::shared_ptr<const graph::Graph> g;
    if (entry.needs_weighted) {
      g = share(graph::reweight_random(graph::grid(3, 5), rng));
    } else if (entry.needs_bipartite) {
      g = share(graph::grid(3, 5));
    } else {
      g = share(graph::random_connected(15, 10, rng));
    }
    for (int trial = 0; trial < 3; ++trial)
      pls::testing::expect_complete(*entry.scheme,
                                    entry.language->sample_legal(g, rng));
  }
}

TEST(Catalog, HasAllTwelveSchemes) {
  const auto catalog = standard_catalog();
  EXPECT_EQ(catalog.size(), 12u);
  for (const SchemeEntry& entry : catalog) {
    EXPECT_FALSE(entry.label.empty());
    EXPECT_EQ(&entry.scheme->language(), entry.language.get());
  }
}

}  // namespace
}  // namespace pls::schemes
