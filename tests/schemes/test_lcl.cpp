#include "schemes/lcl.hpp"

#include <gtest/gtest.h>

#include "schemes/common.hpp"
#include "testing/helpers.hpp"

namespace pls::schemes {
namespace {

using pls::testing::share;

// ---------------------------------------------------------------------------
// dominating set
// ---------------------------------------------------------------------------

TEST(DominatingSet, AllNodesIsDominating) {
  const DominatingSetLanguage language;
  auto g = share(graph::cycle(5));
  std::vector<local::State> all(5, DominatingSetLanguage::encode_member(true));
  EXPECT_TRUE(language.contains(local::Configuration(g, all)));
}

TEST(DominatingSet, CenterDominatesStar) {
  const DominatingSetLanguage language;
  auto g = share(graph::star(6));
  std::vector<local::State> states(6,
                                   DominatingSetLanguage::encode_member(false));
  states[0] = DominatingSetLanguage::encode_member(true);
  EXPECT_TRUE(language.contains(local::Configuration(g, states)));
}

TEST(DominatingSet, UncoveredNodeRejected) {
  const DominatingSetLanguage language;
  auto g = share(graph::path(5));
  std::vector<local::State> states(5,
                                   DominatingSetLanguage::encode_member(false));
  states[0] = DominatingSetLanguage::encode_member(true);
  // node 4 is neither in the set nor adjacent to node 0.
  EXPECT_FALSE(language.contains(local::Configuration(g, states)));
}

TEST(DominatingSet, GreedySamplerIsLegal) {
  const DominatingSetLanguage language;
  for (auto& g : pls::testing::unweighted_family(5)) {
    util::Rng rng(7);
    EXPECT_TRUE(language.contains(language.sample_legal(g, rng)))
        << g->describe();
  }
}

TEST(DominatingSet, ZeroBitSchemeContract) {
  const DominatingSetLanguage language;
  const DominatingSetScheme scheme(language);
  for (auto& g : pls::testing::unweighted_family(9)) {
    util::Rng rng(11);
    const auto cfg = language.sample_legal(g, rng);
    pls::testing::expect_complete(scheme, cfg);
    EXPECT_EQ(scheme.mark(cfg).max_bits(), 0u);
  }
}

TEST(DominatingSet, UndominatedNodeRejectsItself) {
  const DominatingSetLanguage language;
  const DominatingSetScheme scheme(language);
  auto g = share(graph::path(5));
  std::vector<local::State> states(5,
                                   DominatingSetLanguage::encode_member(false));
  states[0] = DominatingSetLanguage::encode_member(true);
  const local::Configuration cfg(g, states);
  core::Labeling empty;
  empty.certs.assign(5, local::Certificate{});
  const core::Verdict verdict = core::run_verifier(scheme, cfg, empty);
  EXPECT_FALSE(verdict.accept()[3]);
  EXPECT_FALSE(verdict.accept()[4]);
  EXPECT_TRUE(verdict.accept()[0]);
  pls::testing::expect_sound(scheme, cfg, 13);
}

// ---------------------------------------------------------------------------
// maximal matching
// ---------------------------------------------------------------------------

TEST(Matching, PerfectMatchingOnEvenPath) {
  const MaximalMatchingLanguage language;
  auto g = share(graph::path(4));
  std::vector<local::State> states = {
      encode_pointer(g->id(1)), encode_pointer(g->id(0)),
      encode_pointer(g->id(3)), encode_pointer(g->id(2))};
  EXPECT_TRUE(language.contains(local::Configuration(g, states)));
}

TEST(Matching, OneSidedPointerRejected) {
  const MaximalMatchingLanguage language;
  auto g = share(graph::path(3));
  std::vector<local::State> states = {
      encode_pointer(g->id(1)), encode_pointer(std::nullopt),
      encode_pointer(std::nullopt)};
  EXPECT_FALSE(language.contains(local::Configuration(g, states)));
}

TEST(Matching, NonMaximalRejected) {
  const MaximalMatchingLanguage language;
  auto g = share(graph::path(2));
  std::vector<local::State> states(2, encode_pointer(std::nullopt));
  // The empty matching is not maximal: edge (0,1) could be added.
  EXPECT_FALSE(language.contains(local::Configuration(g, states)));
}

TEST(Matching, GreedySamplerIsLegal) {
  const MaximalMatchingLanguage language;
  for (auto& g : pls::testing::unweighted_family(15)) {
    util::Rng rng(17);
    EXPECT_TRUE(language.contains(language.sample_legal(g, rng)))
        << g->describe();
  }
}

TEST(Matching, ZeroBitSchemeContract) {
  const MaximalMatchingLanguage language;
  const MaximalMatchingScheme scheme(language);
  for (auto& g : pls::testing::unweighted_family(19)) {
    util::Rng rng(23);
    pls::testing::expect_complete(scheme, language.sample_legal(g, rng));
  }
}

TEST(Matching, BrokenMutualityDetected) {
  const MaximalMatchingLanguage language;
  const MaximalMatchingScheme scheme(language);
  auto g = share(graph::cycle(6));
  util::Rng rng(29);
  auto cfg = language.sample_legal(g, rng);
  // Re-point one matched node somewhere else (or unmatch it).
  for (graph::NodeIndex v = 0; v < cfg.n(); ++v) {
    const auto p = decode_pointer(cfg.state(v));
    if (p && p->has_value()) {
      cfg = cfg.with_state(v, encode_pointer(std::nullopt));
      break;
    }
  }
  if (!language.contains(cfg)) pls::testing::expect_sound(scheme, cfg, 31);
}

// ---------------------------------------------------------------------------
// maximal independent set
// ---------------------------------------------------------------------------

TEST(Mis, AlternatingSetOnEvenCycle) {
  const MisLanguage language;
  auto g = share(graph::cycle(6));
  std::vector<local::State> states;
  for (int v = 0; v < 6; ++v)
    states.push_back(MisLanguage::encode_member(v % 2 == 0));
  EXPECT_TRUE(language.contains(local::Configuration(g, states)));
}

TEST(Mis, AdjacentMembersRejected) {
  const MisLanguage language;
  auto g = share(graph::path(3));
  std::vector<local::State> states = {MisLanguage::encode_member(true),
                                      MisLanguage::encode_member(true),
                                      MisLanguage::encode_member(false)};
  EXPECT_FALSE(language.contains(local::Configuration(g, states)));
}

TEST(Mis, NonMaximalRejected) {
  const MisLanguage language;
  auto g = share(graph::path(3));
  std::vector<local::State> states(3, MisLanguage::encode_member(false));
  EXPECT_FALSE(language.contains(local::Configuration(g, states)));
}

TEST(Mis, GreedySamplerIsLegal) {
  const MisLanguage language;
  for (auto& g : pls::testing::unweighted_family(37)) {
    util::Rng rng(41);
    EXPECT_TRUE(language.contains(language.sample_legal(g, rng)))
        << g->describe();
  }
}

TEST(Mis, ZeroBitSchemeContract) {
  const MisLanguage language;
  const MisScheme scheme(language);
  for (auto& g : pls::testing::unweighted_family(43)) {
    util::Rng rng(47);
    const auto cfg = language.sample_legal(g, rng);
    pls::testing::expect_complete(scheme, cfg);
  }
}

TEST(Mis, ViolationsRejectedAtWitnessNodes) {
  const MisLanguage language;
  const MisScheme scheme(language);
  auto g = share(graph::path(4));
  // 1,1,0,0: adjacent members AND a non-maximal tail.
  std::vector<local::State> states = {
      MisLanguage::encode_member(true), MisLanguage::encode_member(true),
      MisLanguage::encode_member(false), MisLanguage::encode_member(false)};
  const local::Configuration cfg(g, states);
  ASSERT_FALSE(language.contains(cfg));
  core::Labeling empty;
  empty.certs.assign(4, local::Certificate{});
  const core::Verdict verdict = core::run_verifier(scheme, cfg, empty);
  EXPECT_FALSE(verdict.accept()[0]);  // member with member neighbor
  EXPECT_FALSE(verdict.accept()[1]);
  EXPECT_FALSE(verdict.accept()[3]);  // addable node
  pls::testing::expect_sound(scheme, cfg, 53);
}

}  // namespace
}  // namespace pls::schemes
