#include "schemes/acyclic.hpp"

#include <gtest/gtest.h>

#include "schemes/common.hpp"
#include "sensitivity/analysis.hpp"
#include "testing/helpers.hpp"

namespace pls::schemes {
namespace {

using pls::testing::share;

local::Configuration ring_of_pointers(std::shared_ptr<const graph::Graph> g) {
  // Every node points to its clockwise neighbor: one big cycle.
  const std::size_t n = g->n();
  std::vector<local::State> states;
  for (std::size_t v = 0; v < n; ++v)
    states.push_back(encode_pointer(g->id(static_cast<graph::NodeIndex>((v + 1) % n))));
  return local::Configuration(std::move(g), std::move(states));
}

TEST(AcyclicLanguage, ForestAccepted) {
  const AcyclicLanguage language;
  auto g = share(graph::path(5));
  // 0 -> 1 -> 2 <- 3, 4 root: two trees.
  std::vector<local::State> states = {
      encode_pointer(g->id(1)), encode_pointer(g->id(2)),
      encode_pointer(std::nullopt), encode_pointer(g->id(2)),
      encode_pointer(std::nullopt)};
  EXPECT_TRUE(language.contains(local::Configuration(g, states)));
}

TEST(AcyclicLanguage, CycleRejected) {
  const AcyclicLanguage language;
  EXPECT_FALSE(language.contains(ring_of_pointers(share(graph::cycle(6)))));
}

TEST(AcyclicLanguage, PointerToNonNeighborRejected) {
  const AcyclicLanguage language;
  auto g = share(graph::path(4));
  std::vector<local::State> states(4, encode_pointer(std::nullopt));
  states[0] = encode_pointer(g->id(3));  // not adjacent on the path
  EXPECT_FALSE(language.contains(local::Configuration(g, states)));
}

TEST(AcyclicLanguage, MalformedStateRejected) {
  const AcyclicLanguage language;
  auto g = share(graph::path(2));
  std::vector<local::State> states = {encode_pointer(std::nullopt),
                                      local::State::of_uint(0b11, 2)};
  EXPECT_FALSE(language.contains(local::Configuration(g, states)));
}

TEST(AcyclicScheme, CompletenessSweep) {
  const AcyclicLanguage language;
  const AcyclicScheme scheme(language);
  for (auto& g : pls::testing::unweighted_family(41)) {
    util::Rng rng(43);
    pls::testing::expect_complete(scheme, language.sample_legal(g, rng));
  }
}

TEST(AcyclicScheme, ProofSizeLogarithmic) {
  const AcyclicLanguage language;
  const AcyclicScheme scheme(language);
  auto g = share(graph::path(512));
  util::Rng rng(47);
  const auto cfg = language.sample_legal(g, rng);
  EXPECT_LE(scheme.mark(cfg).max_bits(), 16u);  // one varint of a distance
}

TEST(AcyclicScheme, SoundOnSingleCycle) {
  const AcyclicLanguage language;
  const AcyclicScheme scheme(language);
  pls::testing::expect_sound(scheme, ring_of_pointers(share(graph::cycle(7))),
                             53);
}

TEST(AcyclicScheme, EveryCycleHasARejectingNode) {
  // The paper's Theorem-2-style guarantee (sensitivity 1): with *any*
  // certificates, each of the k disjoint pointer cycles contains at least
  // one rejecting node — the distance counters cannot be consistent around
  // a cycle.
  const AcyclicLanguage language;
  const AcyclicScheme scheme(language);
  for (const std::size_t k : {1u, 2u, 4u}) {
    const auto instance = sensitivity::make_cycle_chain(k);
    util::Rng rng(59 + k);
    const core::AttackReport report =
        core::attack(scheme, instance.config, rng);
    EXPECT_GE(report.min_rejections, k) << "k=" << k;
  }
}

TEST(AcyclicScheme, HonestMarkingOfForestHasZeroDistAtRoots) {
  const AcyclicLanguage language;
  const AcyclicScheme scheme(language);
  auto g = share(graph::path(4));
  std::vector<local::State> states = {
      encode_pointer(std::nullopt), encode_pointer(g->id(0)),
      encode_pointer(g->id(1)), encode_pointer(g->id(2))};
  const local::Configuration cfg(g, states);
  const core::Labeling lab = scheme.mark(cfg);
  // dists along the chain are 0,1,2,3.
  for (int v = 0; v < 4; ++v) {
    util::BitReader r = lab.certs[v].reader();
    EXPECT_EQ(r.read_varint(), std::optional<std::uint64_t>(v));
  }
}

TEST(AcyclicScheme, WrongDistanceDetectedLocally) {
  const AcyclicLanguage language;
  const AcyclicScheme scheme(language);
  auto g = share(graph::path(4));
  std::vector<local::State> states = {
      encode_pointer(std::nullopt), encode_pointer(g->id(0)),
      encode_pointer(g->id(1)), encode_pointer(g->id(2))};
  const local::Configuration cfg(g, states);
  core::Labeling lab = scheme.mark(cfg);
  lab.certs[2] = local::Certificate::of_uint(0, 0);  // malformed/empty
  EXPECT_GE(core::run_verifier(scheme, cfg, lab).rejections(), 1u);
}

}  // namespace
}  // namespace pls::schemes
