// Deep adversarial sweep for the MST scheme: across many instances, every
// alternative spanning tree (one-edge swap from the MST), every forest, and
// every "tree of a different graph" claim is rejected under the full attack
// suite.  This is the strongest soundness evidence for the most intricate
// verifier in the repository.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/mst.hpp"
#include "schemes/mst.hpp"
#include "testing/helpers.hpp"

namespace pls::schemes {
namespace {

using pls::testing::share;

std::shared_ptr<const graph::Graph> weighted(std::size_t n, std::size_t extra,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t cap = n * (n - 1) / 2 - (n - 1);
  return share(graph::reweight_random(
      graph::random_connected(n, std::min(extra, cap), rng), rng));
}

/// All spanning trees obtainable from the MST by one edge swap.
std::vector<std::vector<bool>> one_swap_trees(const graph::Graph& g,
                                              std::size_t cap) {
  std::vector<bool> mst(g.m(), false);
  for (const graph::EdgeIndex e : graph::kruskal(g)) mst[e] = true;
  std::vector<std::vector<bool>> out;
  for (graph::EdgeIndex add = 0; add < g.m() && out.size() < cap; ++add) {
    if (mst[add]) continue;
    for (graph::EdgeIndex remove = 0; remove < g.m() && out.size() < cap;
         ++remove) {
      if (!mst[remove]) continue;
      std::vector<bool> candidate = mst;
      candidate[add] = true;
      candidate[remove] = false;
      if (graph::is_spanning_tree(g, candidate))
        out.push_back(std::move(candidate));
    }
  }
  return out;
}

class MstAdversarialSweep : public ::testing::TestWithParam<int> {};

TEST_P(MstAdversarialSweep, EveryOneSwapTreeIsRejected) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const MstLanguage language;
  const MstScheme scheme(language);
  auto g = weighted(12, 10, seed);
  core::AttackOptions options;
  options.hill_climb_steps = 100;
  options.random_trials = 3;
  std::size_t checked = 0;
  for (const auto& mask : one_swap_trees(*g, 6)) {
    const auto claim = language.make_from_mask(g, mask);
    ASSERT_FALSE(language.contains(claim));
    util::Rng rng(seed * 31 + checked);
    const core::AttackReport report =
        core::attack(scheme, claim, rng, options);
    EXPECT_GE(report.min_rejections, 1u)
        << "seed=" << seed << " swap #" << checked << " fooled via "
        << report.best_strategy;
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST_P(MstAdversarialSweep, HonestMstCertificatesDoNotCoverSwaps) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const MstLanguage language;
  const MstScheme scheme(language);
  auto g = weighted(12, 10, seed);
  util::Rng rng(seed);
  const auto mst_cfg = language.sample_legal(g, rng);
  const core::Labeling honest = scheme.mark(mst_cfg);
  for (const auto& mask : one_swap_trees(*g, 6)) {
    const auto claim = language.make_from_mask(g, mask);
    EXPECT_GE(core::run_verifier(scheme, claim, honest).rejections(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstAdversarialSweep, ::testing::Range(1, 9));

TEST(MstAdversarial, CrossGraphCertificateReplay) {
  // Certificates marked on one weighted graph replayed on a different
  // weighted graph with the same node ids: the weight checks catch it.
  const MstLanguage language;
  const MstScheme scheme(language);
  util::Rng rng(77);
  const graph::Graph base = graph::random_connected(12, 10, rng);
  auto g1 = share(graph::reweight_random(base, rng));
  auto g2 = share(graph::reweight_random(base, rng));
  const auto cfg1 = language.sample_legal(g1, rng);
  const auto cfg2 = language.sample_legal(g2, rng);
  if (cfg1.states() != cfg2.states()) {
    // Different MSTs: replaying cfg1's certificates on cfg2 must fail.
    const core::Labeling certs1 = scheme.mark(cfg1);
    EXPECT_GE(core::run_verifier(scheme, cfg2, certs1).rejections(), 1u);
  }
}

TEST(MstAdversarial, TruncatedPhaseRecordsRejected) {
  const MstLanguage language;
  const MstScheme scheme(language);
  auto g = weighted(16, 12, 5);
  util::Rng rng(7);
  const auto cfg = language.sample_legal(g, rng);
  const core::Labeling honest = scheme.mark(cfg);
  // Truncate one node's certificate to half its bits: parse fails there (or
  // the phase-count agreement fails at a neighbor).
  core::Labeling cut = honest;
  cut.certs[3] = cut.certs[3].prefix(cut.certs[3].bit_size() / 2);
  EXPECT_GE(core::run_verifier(scheme, cfg, cut).rejections(), 1u);
}

}  // namespace
}  // namespace pls::schemes
