#include "schemes/leader.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"

namespace pls::schemes {
namespace {

using pls::testing::share;

TEST(LeaderLanguage, ExactlyOneLeader) {
  const LeaderLanguage language;
  auto g = share(graph::path(4));
  EXPECT_TRUE(language.contains(language.make_with_leader(g, 2)));

  std::vector<local::State> none(4, LeaderLanguage::encode_flag(false));
  EXPECT_FALSE(language.contains(local::Configuration(g, none)));

  auto two = language.make_with_leader(g, 0).with_state(
      3, LeaderLanguage::encode_flag(true));
  EXPECT_FALSE(language.contains(two));
}

TEST(LeaderLanguage, MalformedStatesRejected) {
  const LeaderLanguage language;
  auto g = share(graph::path(2));
  std::vector<local::State> states = {LeaderLanguage::encode_flag(true),
                                      local::State::of_uint(1, 2)};
  EXPECT_FALSE(language.contains(local::Configuration(g, states)));
}

class LeaderCompleteness : public ::testing::TestWithParam<int> {};

TEST_P(LeaderCompleteness, EveryLeaderPositionOnGrid) {
  const LeaderLanguage language;
  const LeaderScheme scheme(language);
  auto g = share(graph::grid(3, 4));
  pls::testing::expect_complete(
      scheme, language.make_with_leader(
                  g, static_cast<graph::NodeIndex>(GetParam())));
}

INSTANTIATE_TEST_SUITE_P(Positions, LeaderCompleteness,
                         ::testing::Range(0, 12));

TEST(LeaderScheme, CompletenessSweep) {
  const LeaderLanguage language;
  const LeaderScheme scheme(language);
  for (auto& g : pls::testing::unweighted_family(19)) {
    util::Rng rng(23);
    pls::testing::expect_complete(scheme, language.sample_legal(g, rng));
  }
}

TEST(LeaderScheme, ProofSizeLogarithmic) {
  const LeaderLanguage language;
  const LeaderScheme scheme(language);
  // Certificates on a 1024-ring stay tiny (3 varints of small numbers).
  auto g = share(graph::cycle(1024));
  const auto cfg = language.make_with_leader(g, 17);
  const std::size_t bits = scheme.mark(cfg).max_bits();
  EXPECT_LE(bits, 3 * 16u + 16u);
  EXPECT_LE(bits, scheme.proof_size_bound(1024, 1));
}

TEST(LeaderScheme, SoundOnTwoLeaders) {
  const LeaderLanguage language;
  const LeaderScheme scheme(language);
  auto g = share(graph::cycle(9));
  auto cfg = language.make_with_leader(g, 1).with_state(
      5, LeaderLanguage::encode_flag(true));
  pls::testing::expect_sound(scheme, cfg, 29);
}

TEST(LeaderScheme, SoundOnNoLeader) {
  const LeaderLanguage language;
  const LeaderScheme scheme(language);
  auto g = share(graph::grid(3, 3));
  std::vector<local::State> none(9, LeaderLanguage::encode_flag(false));
  pls::testing::expect_sound(scheme, local::Configuration(g, none), 31);
}

TEST(LeaderScheme, ExtraLeadersRejectThemselves) {
  // With *any* certificates, a second leader is caught: the adversary's best
  // play still leaves every extra leader rejecting (root-id agreement forces
  // a single claimed root, and non-root leaders violate the leader checks).
  const LeaderLanguage language;
  const LeaderScheme scheme(language);
  auto g = share(graph::path(8));
  auto cfg = language.make_with_leader(g, 0);
  for (const graph::NodeIndex extra : {3u, 6u})
    cfg = cfg.with_state(extra, LeaderLanguage::encode_flag(true));
  util::Rng rng(37);
  const core::AttackReport report = core::attack(scheme, cfg, rng);
  EXPECT_GE(report.min_rejections, 2u);
}

TEST(LeaderScheme, HonestCertsFromOtherLeaderRejected) {
  const LeaderLanguage language;
  const LeaderScheme scheme(language);
  auto g = share(graph::cycle(7));
  const auto cfg1 = language.make_with_leader(g, 1);
  const auto cfg4 = language.make_with_leader(g, 4);
  const core::Labeling certs_for_4 = scheme.mark(cfg4);
  EXPECT_GE(core::run_verifier(scheme, cfg1, certs_for_4).rejections(), 1u);
}

TEST(LeaderScheme, DistanceGapRejected) {
  const LeaderLanguage language;
  const LeaderScheme scheme(language);
  auto g = share(graph::path(5));
  const auto cfg = language.make_with_leader(g, 0);
  core::Labeling lab = scheme.mark(cfg);
  // Corrupt node 3's distance field: replace with (root, parent, dist=7).
  util::BitWriter w;
  w.write_varint(g->id(0));
  w.write_varint(g->id(2));
  w.write_varint(7);
  lab.certs[3] = local::Certificate::from_writer(std::move(w));
  const core::Verdict verdict = core::run_verifier(scheme, cfg, lab);
  EXPECT_GE(verdict.rejections(), 1u);
}

TEST(LeaderScheme, SingleNodeNetwork) {
  const LeaderLanguage language;
  const LeaderScheme scheme(language);
  auto g = share(graph::path(1));
  pls::testing::expect_complete(scheme, language.make_with_leader(g, 0));
}

}  // namespace
}  // namespace pls::schemes
