#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "graph/dsu.hpp"

namespace pls::graph {
namespace {

Graph triangle() {
  Graph::Builder b;
  b.add_node(10);
  b.add_node(20);
  b.add_node(30);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  return std::move(b).build();
}

TEST(GraphBuilder, BasicProperties) {
  const Graph g = triangle();
  EXPECT_EQ(g.n(), 3u);
  EXPECT_EQ(g.m(), 3u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.id(0), 10u);
  EXPECT_EQ(g.max_id(), 30u);
  EXPECT_EQ(g.min_id(), 10u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(GraphBuilder, DuplicateIdThrows) {
  Graph::Builder b;
  b.add_node(5);
  EXPECT_THROW(b.add_node(5), std::invalid_argument);
}

TEST(GraphBuilder, SelfLoopThrows) {
  Graph::Builder b;
  b.add_node(1);
  EXPECT_THROW(b.add_edge(0, 0), std::invalid_argument);
}

TEST(GraphBuilder, ParallelEdgeThrows) {
  Graph::Builder b;
  b.add_node(1);
  b.add_node(2);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // same undirected edge
  EXPECT_THROW(std::move(b).build(), std::invalid_argument);
}

TEST(GraphBuilder, OutOfRangeEndpointThrows) {
  Graph::Builder b;
  b.add_node(1);
  EXPECT_THROW(b.add_edge(0, 3), std::invalid_argument);
}

TEST(Graph, AdjacencySortedByNeighborIndex) {
  Graph::Builder b;
  for (int i = 0; i < 5; ++i) b.add_node(static_cast<RawId>(i + 1));
  b.add_edge(2, 4);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  const Graph g = std::move(b).build();
  const auto adj = g.adjacency(2);
  ASSERT_EQ(adj.size(), 3u);
  EXPECT_EQ(adj[0].to, 0u);
  EXPECT_EQ(adj[1].to, 3u);
  EXPECT_EQ(adj[2].to, 4u);
}

TEST(Graph, FindEdgeIsSymmetric) {
  const Graph g = triangle();
  const auto e1 = g.find_edge(0, 2);
  const auto e2 = g.find_edge(2, 0);
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(e1, e2);
  EXPECT_FALSE(g.find_edge(0, 0).has_value());
}

TEST(Graph, OtherEndpoint) {
  const Graph g = triangle();
  const auto e = g.find_edge(0, 2);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(g.other_endpoint(*e, 0), 2u);
  EXPECT_EQ(g.other_endpoint(*e, 2), 0u);
  EXPECT_THROW(g.other_endpoint(*e, 1), std::logic_error);
}

TEST(Graph, FindById) {
  const Graph g = triangle();
  EXPECT_EQ(g.find_by_id(20), std::optional<NodeIndex>(1));
  EXPECT_FALSE(g.find_by_id(99).has_value());
}

TEST(Graph, DisconnectedDetected) {
  Graph::Builder b;
  b.add_node(1);
  b.add_node(2);
  b.add_node(3);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build();
  EXPECT_FALSE(g.is_connected());
}

TEST(Graph, DistinctWeightsDetected) {
  Graph::Builder b;
  b.add_node(1);
  b.add_node(2);
  b.add_node(3);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 7);
  EXPECT_TRUE(std::move(b).build().has_distinct_weights());

  Graph::Builder b2;
  b2.add_node(1);
  b2.add_node(2);
  b2.add_node(3);
  b2.add_edge(0, 1, 5);
  b2.add_edge(1, 2, 5);
  EXPECT_FALSE(std::move(b2).build().has_distinct_weights());
}

TEST(Graph, DescribeMentionsShape) {
  const std::string d = triangle().describe();
  EXPECT_NE(d.find("n=3"), std::string::npos);
  EXPECT_NE(d.find("connected"), std::string::npos);
}

TEST(Dsu, UniteAndFind) {
  Dsu dsu(5);
  EXPECT_EQ(dsu.component_count(), 5u);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_TRUE(dsu.unite(2, 3));
  EXPECT_FALSE(dsu.unite(1, 0));  // already together
  EXPECT_EQ(dsu.component_count(), 3u);
  EXPECT_TRUE(dsu.same(0, 1));
  EXPECT_FALSE(dsu.same(0, 2));
  EXPECT_TRUE(dsu.unite(1, 3));
  EXPECT_TRUE(dsu.same(0, 2));
  EXPECT_EQ(dsu.component_size(0), 4u);
}

TEST(Dsu, OutOfRangeThrows) {
  Dsu dsu(3);
  EXPECT_THROW(dsu.find(3), std::logic_error);
}

}  // namespace
}  // namespace pls::graph
