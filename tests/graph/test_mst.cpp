#include "graph/mst.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace pls::graph {
namespace {

Graph weighted_instance(std::size_t n, std::size_t extra, std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t max_extra = n * (n - 1) / 2 - (n - 1);
  Graph g = random_connected(n, std::min(extra, max_extra), rng);
  return reweight_random(g, rng);
}

TEST(Mst, HandCheckedExample) {
  // Square with a diagonal; unique MST is the three lightest edges that
  // stay acyclic.
  Graph::Builder b;
  for (int i = 0; i < 4; ++i) b.add_node(static_cast<RawId>(i + 1));
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 2);
  b.add_edge(2, 3, 3);
  b.add_edge(3, 0, 4);
  b.add_edge(0, 2, 5);
  const Graph g = std::move(b).build();
  const auto tree = kruskal(g);
  EXPECT_EQ(total_weight(g, tree), 1 + 2 + 3);
}

TEST(Mst, RequiresDistinctWeights) {
  Graph::Builder b;
  b.add_node(1);
  b.add_node(2);
  b.add_node(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  const Graph g = std::move(b).build();
  EXPECT_THROW(kruskal(g), std::logic_error);
}

TEST(Mst, RequiresConnected) {
  Graph::Builder b;
  b.add_node(1);
  b.add_node(2);
  b.add_node(3);
  b.add_edge(0, 1, 1);
  const Graph g = std::move(b).build();
  EXPECT_THROW(kruskal(g), std::logic_error);
}

class MstAlgorithms
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MstAlgorithms, KruskalPrimBoruvkaAgree) {
  const auto [n, extra, seed] = GetParam();
  const Graph g = weighted_instance(static_cast<std::size_t>(n),
                                    static_cast<std::size_t>(extra),
                                    static_cast<std::uint64_t>(seed));
  const auto k = kruskal(g);
  const auto p = prim(g);
  const BoruvkaRun b = boruvka_with_history(g);

  // Distinct weights => the MST is unique => identical edge sets.
  const std::set<EdgeIndex> ks(k.begin(), k.end());
  const std::set<EdgeIndex> ps(p.begin(), p.end());
  const std::set<EdgeIndex> bs(b.mst_edges.begin(), b.mst_edges.end());
  EXPECT_EQ(ks, ps);
  EXPECT_EQ(ks, bs);

  // And it is a spanning tree.
  std::vector<bool> mask(g.m(), false);
  for (const EdgeIndex e : k) mask[e] = true;
  EXPECT_TRUE(is_spanning_tree(g, mask));
}

TEST_P(MstAlgorithms, BoruvkaPhaseStructure) {
  const auto [n, extra, seed] = GetParam();
  const Graph g = weighted_instance(static_cast<std::size_t>(n),
                                    static_cast<std::size_t>(extra),
                                    static_cast<std::uint64_t>(seed));
  const BoruvkaRun run = boruvka_with_history(g);

  // Phase 0 is all singletons; the last phase is a single fragment.
  ASSERT_GE(run.phases.size(), 1u);
  for (NodeIndex v = 0; v < g.n(); ++v)
    EXPECT_EQ(run.phases.front().fragment_of[v], v);
  const auto& last = run.phases.back();
  for (NodeIndex v = 0; v < g.n(); ++v)
    EXPECT_EQ(last.fragment_of[v], last.fragment_of[0]);
  EXPECT_TRUE(last.chosen.empty());

  // Fragments only merge, never split, and at least halve in count.
  std::size_t prev_fragments = g.n();
  for (std::size_t i = 0; i < run.phases.size(); ++i) {
    const auto& phase = run.phases[i];
    std::set<NodeIndex> reps(phase.fragment_of.begin(),
                             phase.fragment_of.end());
    if (i > 0) {
      EXPECT_LE(reps.size(), (prev_fragments + 1) / 2);
      // Monotone: same fragment before => same fragment now.
      const auto& before = run.phases[i - 1];
      for (const Edge& e : g.edges())
        if (before.fragment_of[e.u] == before.fragment_of[e.v]) {
          EXPECT_EQ(phase.fragment_of[e.u], phase.fragment_of[e.v]);
        }
    }
    // The representative is the minimum-id member of its fragment.
    for (NodeIndex v = 0; v < g.n(); ++v)
      EXPECT_LE(g.id(phase.fragment_of[v]), g.id(v));
    prev_fragments = reps.size();
  }
}

TEST_P(MstAlgorithms, ChosenEdgesAreMinimumOutgoing) {
  const auto [n, extra, seed] = GetParam();
  const Graph g = weighted_instance(static_cast<std::size_t>(n),
                                    static_cast<std::size_t>(extra),
                                    static_cast<std::uint64_t>(seed));
  const BoruvkaRun run = boruvka_with_history(g);
  for (const BoruvkaPhase& phase : run.phases) {
    for (const auto& [rep, chosen] : phase.chosen) {
      const Weight w = g.weight(chosen);
      // The chosen edge leaves the fragment...
      EXPECT_NE(phase.fragment_of[g.edge(chosen).u],
                phase.fragment_of[g.edge(chosen).v]);
      // ...and no outgoing edge of this fragment is lighter.
      for (EdgeIndex e = 0; e < g.m(); ++e) {
        const Edge& ed = g.edge(e);
        const bool outgoing =
            (phase.fragment_of[ed.u] == rep) != (phase.fragment_of[ed.v] == rep);
        if (outgoing) {
          EXPECT_GE(g.weight(e), w);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MstAlgorithms,
    ::testing::Combine(::testing::Values(2, 3, 8, 33, 100),
                       ::testing::Values(0, 10),
                       ::testing::Values(1, 7)));

TEST(Mst, BoruvkaPhaseCountLogarithmic) {
  for (const std::size_t n : {2u, 16u, 64u, 256u}) {
    const Graph g = weighted_instance(n, n, 5);
    const BoruvkaRun run = boruvka_with_history(g);
    std::size_t bound = 1, frags = n;
    while (frags > 1) {
      frags = (frags + 1) / 2;
      ++bound;
    }
    EXPECT_LE(run.phases.size(), bound) << "n=" << n;
  }
}

TEST(Mst, PathGraphMstIsWholePath) {
  util::Rng rng(3);
  const Graph g = reweight_random(path(10), rng);
  EXPECT_EQ(kruskal(g).size(), 9u);
  EXPECT_EQ(boruvka_with_history(g).mst_edges.size(), 9u);
}

TEST(Mst, SingleNode) {
  const Graph g = path(1);
  const BoruvkaRun run = boruvka_with_history(g);
  EXPECT_TRUE(run.mst_edges.empty());
  EXPECT_EQ(run.phases.size(), 1u);
}

}  // namespace
}  // namespace pls::graph
