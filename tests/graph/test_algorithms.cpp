#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace pls::graph {
namespace {

TEST(Bfs, DistancesOnPath) {
  const Graph g = path(6);
  const BfsResult r = bfs(g, 0);
  for (NodeIndex v = 0; v < 6; ++v) EXPECT_EQ(r.dist[v], v);
  EXPECT_EQ(r.parent[0], kInvalidNode);
  EXPECT_EQ(r.parent[3], 2u);
}

TEST(Bfs, DistancesOnGrid) {
  const Graph g = grid(3, 3);
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.dist[8], 4u);  // opposite corner: Manhattan distance
}

TEST(Bfs, SubgraphRestriction) {
  const Graph g = cycle(6);
  // Remove one edge: the cycle becomes a path, distances go the long way.
  std::vector<bool> mask(g.m(), true);
  const auto cut = g.find_edge(0, 5);
  ASSERT_TRUE(cut.has_value());
  mask[*cut] = false;
  const BfsResult r = bfs_on_subgraph(g, 0, mask);
  EXPECT_EQ(r.dist[5], 5u);
}

TEST(Bfs, UnreachableMarked) {
  Graph::Builder b;
  b.add_node(1);
  b.add_node(2);
  b.add_node(3);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build();
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.dist[2], BfsResult::kUnreachable);
}

TEST(Components, CountsComponents) {
  Graph::Builder b;
  for (int i = 0; i < 6; ++i) b.add_node(static_cast<RawId>(i + 1));
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = std::move(b).build();
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 4u);
  EXPECT_EQ(c.comp[0], c.comp[1]);
  EXPECT_NE(c.comp[0], c.comp[2]);
}

TEST(Components, SubgraphComponents) {
  const Graph g = cycle(6);
  std::vector<bool> none(g.m(), false);
  EXPECT_EQ(components_of_subgraph(g, none).count, 6u);
  std::vector<bool> all(g.m(), true);
  EXPECT_EQ(components_of_subgraph(g, all).count, 1u);
}

TEST(Bipartition, EvenCycleYes) {
  const auto coloring = bipartition(cycle(8));
  ASSERT_TRUE(coloring.has_value());
  const Graph g = cycle(8);
  for (const Edge& e : g.edges()) EXPECT_NE((*coloring)[e.u], (*coloring)[e.v]);
}

TEST(Bipartition, OddCycleNo) {
  EXPECT_FALSE(bipartition(cycle(7)).has_value());
}

TEST(Bipartition, GridYes) { EXPECT_TRUE(bipartition(grid(4, 5)).has_value()); }

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter(path(10)), 9u);
  EXPECT_EQ(diameter(cycle(10)), 5u);
  EXPECT_EQ(diameter(complete(5)), 1u);
  EXPECT_EQ(diameter(star(9)), 2u);
}

TEST(SpanningTree, RecognizesTree) {
  const Graph g = cycle(5);
  std::vector<bool> mask(g.m(), true);
  EXPECT_FALSE(is_spanning_tree(g, mask));  // a cycle is not a tree
  mask[0] = false;
  EXPECT_TRUE(is_spanning_tree(g, mask));  // cycle minus an edge is a path
}

TEST(SpanningTree, RejectsDisconnectedWithRightCount) {
  const Graph g = cycle(6);
  // Pick 5 edges but leave two gaps by taking one edge twice... instead:
  // remove two adjacent edges and add none: 4 edges on 6 nodes.
  std::vector<bool> mask(g.m(), true);
  mask[0] = false;
  mask[1] = false;
  EXPECT_FALSE(is_spanning_tree(g, mask));
}

TEST(Forest, DetectsCycles) {
  const Graph g = cycle(4);
  std::vector<bool> all(g.m(), true);
  EXPECT_FALSE(is_forest(g, all));
  all[2] = false;
  EXPECT_TRUE(is_forest(g, all));
}

TEST(PointerCycles, EmptyOnForest) {
  // 0 -> 1 -> 2, 3 -> 2 (in-tree at 2).
  std::vector<std::optional<NodeIndex>> ptrs = {1u, 2u, std::nullopt, 2u};
  EXPECT_TRUE(pointer_cycles(ptrs).empty());
}

TEST(PointerCycles, FindsSingleCycle) {
  // 0 -> 1 -> 2 -> 0 and a tail 3 -> 0.
  std::vector<std::optional<NodeIndex>> ptrs = {1u, 2u, 0u, 0u};
  const auto cycles = pointer_cycles(ptrs);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 3u);
}

TEST(PointerCycles, FindsDisjointCycles) {
  // Two 2-cycles.
  std::vector<std::optional<NodeIndex>> ptrs = {1u, 0u, 3u, 2u};
  EXPECT_EQ(pointer_cycles(ptrs).size(), 2u);
}

TEST(PointerCycles, SelfLoop) {
  std::vector<std::optional<NodeIndex>> ptrs = {0u};
  ASSERT_EQ(pointer_cycles(ptrs).size(), 1u);
}

TEST(SpanningInTree, AcceptsBfsTree) {
  const Graph g = grid(3, 3);
  const BfsResult r = bfs(g, 4);
  std::vector<std::optional<NodeIndex>> ptrs(g.n());
  for (NodeIndex v = 0; v < g.n(); ++v)
    if (r.parent[v] != kInvalidNode) ptrs[v] = r.parent[v];
  EXPECT_TRUE(is_spanning_in_tree(g, ptrs));
}

TEST(SpanningInTree, RejectsTwoRoots) {
  const Graph g = path(4);
  std::vector<std::optional<NodeIndex>> ptrs = {std::nullopt, 0u, 3u,
                                                std::nullopt};
  EXPECT_FALSE(is_spanning_in_tree(g, ptrs));
}

TEST(SpanningInTree, RejectsNonEdgePointer) {
  const Graph g = path(4);
  // 2 points to 0, but (0,2) is not an edge of the path.
  std::vector<std::optional<NodeIndex>> ptrs = {std::nullopt, 0u, 0u, 2u};
  EXPECT_FALSE(is_spanning_in_tree(g, ptrs));
}

TEST(SpanningInTree, RejectsCycle) {
  const Graph g = cycle(4);
  std::vector<std::optional<NodeIndex>> ptrs = {1u, 2u, 3u, 0u};
  EXPECT_FALSE(is_spanning_in_tree(g, ptrs));
}

}  // namespace
}  // namespace pls::graph
