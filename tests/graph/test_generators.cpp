#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace pls::graph {
namespace {

TEST(Generators, PathShape) {
  const Graph g = path(5);
  EXPECT_EQ(g.n(), 5u);
  EXPECT_EQ(g.m(), 4u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.degree(4), 1u);
}

TEST(Generators, SingleNodePath) {
  const Graph g = path(1);
  EXPECT_EQ(g.n(), 1u);
  EXPECT_EQ(g.m(), 0u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Generators, CycleShape) {
  const Graph g = cycle(6);
  EXPECT_EQ(g.n(), 6u);
  EXPECT_EQ(g.m(), 6u);
  for (NodeIndex v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Generators, StarShape) {
  const Graph g = star(7);
  EXPECT_EQ(g.n(), 7u);
  EXPECT_EQ(g.m(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Generators, CompleteShape) {
  const Graph g = complete(5);
  EXPECT_EQ(g.m(), 10u);
  for (NodeIndex v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, GridShape) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.n(), 12u);
  EXPECT_EQ(g.m(), 3u * 3 + 4u * 2);  // 3 per row * ... : rows*(cols-1) + (rows-1)*cols
  EXPECT_EQ(g.m(), 3 * (4 - 1) + (3 - 1) * 4);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(5), 4u);   // interior (row 1, col 1)
}

TEST(Generators, BalancedBinaryTreeShape) {
  const Graph g = balanced_binary_tree(15);
  EXPECT_EQ(g.m(), 14u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Generators, CaterpillarShape) {
  const Graph g = caterpillar(4, 2);
  EXPECT_EQ(g.n(), 12u);
  EXPECT_EQ(g.m(), 11u);
  EXPECT_TRUE(g.is_connected());
}

class RandomGraphs : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RandomGraphs, RandomTreeIsTree) {
  const auto [n, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  const Graph g = random_tree(static_cast<std::size_t>(n), rng);
  EXPECT_EQ(g.n(), static_cast<std::size_t>(n));
  EXPECT_EQ(g.m(), static_cast<std::size_t>(n - 1));
  EXPECT_TRUE(g.is_connected());
}

TEST_P(RandomGraphs, RandomConnectedHasRequestedEdges) {
  const auto [n, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  const std::size_t un = static_cast<std::size_t>(n);
  const std::size_t extra = std::min(un / 2, un * (un - 1) / 2 - (un - 1));
  const Graph g = random_connected(un, extra, rng);
  EXPECT_EQ(g.m(), static_cast<std::size_t>(n - 1) + extra);
  EXPECT_TRUE(g.is_connected());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RandomGraphs,
    ::testing::Combine(::testing::Values(2, 5, 16, 64, 200),
                       ::testing::Values(1, 2, 3)));

TEST(Generators, RandomRegularDegrees) {
  util::Rng rng(99);
  const Graph g = random_regular(10, 3, rng);
  EXPECT_TRUE(g.is_connected());
  for (NodeIndex v = 0; v < g.n(); ++v) EXPECT_EQ(g.degree(v), 3u);
}

TEST(Generators, RandomRegularRejectsOddProduct) {
  util::Rng rng(1);
  EXPECT_THROW(random_regular(5, 3, rng), std::logic_error);
}

TEST(Generators, RelabelPreservesStructure) {
  util::Rng rng(3);
  const Graph g = grid(3, 3);
  const Graph h = relabel_random(g, rng);
  EXPECT_EQ(h.n(), g.n());
  EXPECT_EQ(h.m(), g.m());
  for (NodeIndex v = 0; v < g.n(); ++v) EXPECT_EQ(h.degree(v), g.degree(v));
  // Ids are fresh and distinct.
  std::set<RawId> ids(h.ids().begin(), h.ids().end());
  EXPECT_EQ(ids.size(), h.n());
}

TEST(Generators, ReweightRandomGivesDistinctWeights) {
  util::Rng rng(4);
  const Graph g = reweight_random(complete(6), rng);
  EXPECT_TRUE(g.has_distinct_weights());
  // Weights are exactly a permutation of 1..m.
  std::set<Weight> ws;
  for (const Edge& e : g.edges()) ws.insert(e.w);
  EXPECT_EQ(ws.size(), g.m());
  EXPECT_EQ(*ws.begin(), 1);
  EXPECT_EQ(*ws.rbegin(), static_cast<Weight>(g.m()));
}

TEST(Generators, ReweightExplicitSizeMismatchThrows) {
  EXPECT_THROW(reweight(path(4), {1, 2}), std::logic_error);
}

TEST(Generators, CrossGraphsPreservesDegrees) {
  const Graph a = cycle(6);
  const Graph b = cycle(8);
  const CrossedPair crossed = cross_graphs(a, 0, 1, b, 0, 1, 100);
  EXPECT_EQ(crossed.graph.n(), 14u);
  EXPECT_EQ(crossed.graph.m(), 14u);  // 6 + 8 - 2 removed + 2 added
  EXPECT_TRUE(crossed.graph.is_connected());
  for (NodeIndex v = 0; v < crossed.graph.n(); ++v)
    EXPECT_EQ(crossed.graph.degree(v), 2u);
  // The removed edges are gone, the cross edges exist.
  EXPECT_FALSE(crossed.graph.find_edge(crossed.a1, crossed.a2).has_value());
  EXPECT_TRUE(crossed.graph.find_edge(crossed.a1, crossed.b1).has_value());
  EXPECT_TRUE(crossed.graph.find_edge(crossed.a2, crossed.b2).has_value());
}

TEST(Generators, CrossGraphsRequiresCutEdges) {
  const Graph a = cycle(6);
  EXPECT_THROW(cross_graphs(a, 0, 3, a, 0, 1, 100), std::logic_error);
}

TEST(Generators, UnionWithBridgeConnects) {
  const Graph g = union_with_bridge(cycle(4), 0, cycle(5), 2, 50);
  EXPECT_EQ(g.n(), 9u);
  EXPECT_EQ(g.m(), 10u);
  EXPECT_TRUE(g.is_connected());
}

}  // namespace
}  // namespace pls::graph
