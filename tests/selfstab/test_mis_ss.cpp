#include "selfstab/mis_ss.hpp"

#include <gtest/gtest.h>

#include "schemes/lcl.hpp"
#include "selfstab/daemon.hpp"
#include "testing/helpers.hpp"

namespace pls::selfstab {
namespace {

using pls::testing::share;

std::vector<local::State> random_bits(std::size_t n, util::Rng& rng) {
  std::vector<local::State> states;
  for (std::size_t v = 0; v < n; ++v)
    states.push_back(local::State::of_uint(rng.below(2), 1));
  return states;
}

class MisDaemonSweep
    : public ::testing::TestWithParam<std::tuple<DaemonKind, int>> {};

TEST_P(MisDaemonSweep, ConvergesToAnMisFromRandomStates) {
  const auto [daemon, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  const graph::Graph g = graph::random_connected(24, 16, rng);
  std::vector<local::State> states = random_bits(g.n(), rng);

  const DaemonRun run = run_under_daemon(g, states, MisProtocol::step(),
                                         daemon, rng, 200 * g.n());
  EXPECT_TRUE(run.converged);
  EXPECT_TRUE(MisProtocol::detectors(g, states).empty());

  // The fixed point is a genuine MIS per the language decider.
  const schemes::MisLanguage language;
  auto shared = std::make_shared<const graph::Graph>(g);
  EXPECT_TRUE(language.contains(local::Configuration(shared, states)));
}

INSTANTIATE_TEST_SUITE_P(
    Daemons, MisDaemonSweep,
    ::testing::Combine(::testing::Values(DaemonKind::kSynchronous,
                                         DaemonKind::kCentral,
                                         DaemonKind::kDistributed),
                       ::testing::Values(1, 2, 3, 4, 5)));

TEST(MisProtocol, LegitimateStatesAreSilentAndStable) {
  const schemes::MisLanguage language;
  for (auto& g : pls::testing::unweighted_family(31)) {
    util::Rng rng(37);
    const auto cfg = language.sample_legal(g, rng);
    std::vector<local::State> states = cfg.states();
    EXPECT_TRUE(MisProtocol::detectors(*g, states).empty()) << g->describe();
    util::Rng daemon_rng(1);
    const DaemonRun run = run_under_daemon(
        *g, states, MisProtocol::step(), DaemonKind::kCentral, daemon_rng, 10);
    EXPECT_TRUE(run.converged);
    EXPECT_EQ(run.steps, 0u) << g->describe();
  }
}

TEST(MisProtocol, DetectorFiresOnAdjacentMembers) {
  const graph::Graph g = graph::path(4);
  std::vector<local::State> states = {
      local::State::of_uint(1, 1), local::State::of_uint(1, 1),
      local::State::of_uint(0, 1), local::State::of_uint(1, 1)};
  const auto detectors = MisProtocol::detectors(g, states);
  // Nodes 0 and 1 are adjacent members; both fail the local check.
  EXPECT_GE(detectors.size(), 2u);
}

TEST(MisProtocol, DetectorFiresOnUncoveredNode) {
  const graph::Graph g = graph::path(5);
  std::vector<local::State> states(5, local::State::of_uint(0, 1));
  states[0] = local::State::of_uint(1, 1);
  const auto detectors = MisProtocol::detectors(g, states);
  // Nodes 2, 3, 4 are uncovered non-members.
  EXPECT_GE(detectors.size(), 3u);
}

TEST(MisProtocol, MalformedStatesAreRepaired) {
  util::Rng rng(41);
  const graph::Graph g = graph::grid(3, 4);
  std::vector<local::State> states = random_bits(g.n(), rng);
  states[5] = local::random_state(17, rng);  // garbage
  EXPECT_FALSE(MisProtocol::detectors(g, states).empty());
  const DaemonRun run = run_under_daemon(
      g, states, MisProtocol::step(), DaemonKind::kSynchronous, rng, 50 * g.n());
  EXPECT_TRUE(run.converged);
  EXPECT_TRUE(MisProtocol::detectors(g, states).empty());
}

}  // namespace
}  // namespace pls::selfstab
