#include <gtest/gtest.h>

#include "selfstab/harness.hpp"
#include "selfstab/spanning_tree_ss.hpp"
#include "testing/helpers.hpp"

namespace pls::selfstab {
namespace {

using pls::testing::share;

TEST(TreeState, EncodingRoundTrip) {
  const TreeState s{42, 7, 13};
  const auto decoded = decode_tree_state(encode_tree_state(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, s);
}

TEST(TreeState, GarbageFailsToDecode) {
  EXPECT_FALSE(decode_tree_state(local::State{}).has_value());
}

TEST(Protocol, LegitimateIsFixedPoint) {
  for (auto& g : pls::testing::unweighted_family(1)) {
    const SpanningTreeProtocol protocol(g->n());
    local::SyncNetwork net(g, protocol.legitimate(*g));
    const local::RoundStats stats = net.step(protocol.step());
    EXPECT_EQ(stats.changed_nodes, 0u) << g->describe();
  }
}

TEST(Protocol, LegitimateIsSilent) {
  for (auto& g : pls::testing::unweighted_family(2)) {
    const SpanningTreeProtocol protocol(g->n());
    EXPECT_TRUE(
        SpanningTreeProtocol::detectors(*g, protocol.legitimate(*g)).empty())
        << g->describe();
  }
}

TEST(Protocol, ConvergesFromAllZeroStates) {
  auto g = share(graph::grid(4, 4));
  const SpanningTreeProtocol protocol(g->n());
  std::vector<local::State> zero(g->n(),
                                 encode_tree_state(TreeState{0, 0, 0}));
  local::SyncNetwork net(g, zero);
  const std::size_t rounds =
      net.run_until_quiescent(protocol.step(), 4 * g->n());
  EXPECT_LE(rounds, 4 * g->n());
  EXPECT_EQ(net.states(), protocol.legitimate(*g));
}

TEST(Protocol, GhostRootIsFlushed) {
  // A corrupted node advertises a root id smaller than every real id; the
  // distance bound flushes it and the network re-stabilizes.
  auto g = share(graph::path(8));
  const SpanningTreeProtocol protocol(g->n());
  std::vector<local::State> states = protocol.legitimate(*g);
  states[4] = encode_tree_state(TreeState{0, 0, 0});  // fake root id 0
  local::SyncNetwork net(g, states);
  const std::size_t rounds =
      net.run_until_quiescent(protocol.step(), 6 * g->n());
  EXPECT_LE(rounds, 6 * g->n());
  EXPECT_EQ(net.states(), protocol.legitimate(*g));
}

TEST(Detector, SingleCorruptionIsDetectedImmediately) {
  auto g = share(graph::grid(3, 4));
  const SpanningTreeProtocol protocol(g->n());
  std::vector<local::State> states = protocol.legitimate(*g);
  // Corrupt node 5's distance: detection is 1-round local.
  TreeState s = *decode_tree_state(states[5]);
  s.dist += 3;
  states[5] = encode_tree_state(s);
  EXPECT_GE(SpanningTreeProtocol::detectors(*g, states).size(), 1u);
}

class FaultSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FaultSweep, RecoversAndStaysSilent) {
  const auto [k, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  const graph::Graph g = graph::random_connected(24, 12, rng);
  const FaultExperiment result =
      run_fault_experiment(g, static_cast<std::size_t>(k), rng);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.silent_after);
  EXPECT_TRUE(result.legitimate_after);
  if (k > 0) {
    // Faults need not always be observable (a fault may rewrite a state to
    // an equivalent value), but convergence must hold regardless.
    EXPECT_LE(result.detectors_immediate, g.n());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Faults, FaultSweep,
    ::testing::Combine(::testing::Values(0, 1, 3, 8, 24),
                       ::testing::Values(1, 2, 3)));

TEST(Detector, MoreFaultsMoreDetectorsOnAverage) {
  // Aggregate trend check: k=8 triggers at least as many detectors as k=1
  // summed over seeds (the error-sensitivity motivation from the paper's
  // conclusions, measured on the self-stabilizing detector).
  std::size_t few = 0, many = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(seed);
    const graph::Graph g = graph::grid(5, 5);
    few += run_fault_experiment(g, 1, rng).detectors_immediate;
    util::Rng rng2(seed + 100);
    many += run_fault_experiment(g, 8, rng2).detectors_immediate;
  }
  EXPECT_GT(many, few);
}

}  // namespace
}  // namespace pls::selfstab
