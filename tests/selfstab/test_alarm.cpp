#include "selfstab/alarm.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "schemes/leader.hpp"
#include "testing/helpers.hpp"

namespace pls::selfstab {
namespace {

using pls::testing::share;

TEST(Alarm, NoRejectionsNoAlarm) {
  const graph::Graph g = graph::grid(3, 4);
  const AlarmResult r = converge_alarm(g, std::vector<bool>(g.n(), false));
  EXPECT_FALSE(r.alarm);
  EXPECT_LE(r.rounds, 2u);  // immediately quiescent
}

TEST(Alarm, SingleRejectionReachesEveryone) {
  const graph::Graph g = graph::path(16);
  std::vector<bool> rejected(16, false);
  rejected[15] = true;
  const AlarmResult r = converge_alarm(g, rejected);
  EXPECT_TRUE(r.alarm);
  EXPECT_EQ(r.source_id, g.id(15));
  // One alarm at the end of a 16-path: 15 propagation rounds + quiescence.
  EXPECT_GE(r.rounds, 15u);
  EXPECT_LE(r.rounds, 17u);
}

TEST(Alarm, MinimumIdWinsAmongMultipleAlarms) {
  const graph::Graph g = graph::cycle(10);
  std::vector<bool> rejected(10, false);
  rejected[3] = rejected[7] = true;
  const AlarmResult r = converge_alarm(g, rejected);
  EXPECT_TRUE(r.alarm);
  EXPECT_EQ(r.source_id, std::min(g.id(3), g.id(7)));
}

TEST(Alarm, EndToEndWithVerifier) {
  // The operational loop: verify -> collect -> alarm identifies a faulty
  // region's smallest-id witness.
  const schemes::LeaderLanguage language;
  const schemes::LeaderScheme scheme(language);
  auto g = share(graph::grid(4, 4));
  const auto cfg = language.make_with_leader(g, 5);
  const core::Labeling certs = scheme.mark(cfg);

  // No fault: no alarm.
  const core::Verdict ok = core::run_verifier(scheme, cfg, certs);
  EXPECT_FALSE(converge_alarm(*g, ok.rejected()).alarm);

  // Fault: alarm raised and attributed to a rejecting node.
  const auto faulty =
      cfg.with_state(12, schemes::LeaderLanguage::encode_flag(true));
  const core::Verdict bad = core::run_verifier(scheme, faulty, certs);
  ASSERT_GE(bad.rejections(), 1u);
  const AlarmResult alarm = converge_alarm(*g, bad.rejected());
  EXPECT_TRUE(alarm.alarm);
  bool source_was_rejecting = false;
  for (const graph::NodeIndex v : bad.rejecting_nodes())
    if (g->id(v) == alarm.source_id) source_was_rejecting = true;
  EXPECT_TRUE(source_was_rejecting);
}

TEST(Alarm, RoundsBoundedByEccentricityPlusOne) {
  util::Rng rng(17);
  const graph::Graph g = graph::random_connected(40, 30, rng);
  std::vector<bool> rejected(g.n(), false);
  rejected[0] = true;
  const AlarmResult r = converge_alarm(g, rejected);
  const graph::BfsResult bfs = graph::bfs(g, 0);
  std::size_t ecc = 0;
  for (const std::uint32_t d : bfs.dist) ecc = std::max<std::size_t>(ecc, d);
  EXPECT_LE(r.rounds, ecc + 2);
}

}  // namespace
}  // namespace pls::selfstab
