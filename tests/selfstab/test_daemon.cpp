#include "selfstab/daemon.hpp"

#include <gtest/gtest.h>

#include "selfstab/spanning_tree_ss.hpp"
#include "testing/helpers.hpp"

namespace pls::selfstab {
namespace {

using pls::testing::share;

std::vector<local::State> garbage_states(const graph::Graph& g,
                                         util::Rng& rng) {
  std::vector<local::State> states;
  states.reserve(g.n());
  for (graph::NodeIndex v = 0; v < g.n(); ++v) {
    TreeState s;
    s.root = 1 + rng.below(2 * g.max_id());
    s.dist = rng.below(2 * g.n());
    s.parent = 1 + rng.below(2 * g.max_id());
    states.push_back(encode_tree_state(s));
  }
  return states;
}

class DaemonSweep
    : public ::testing::TestWithParam<std::tuple<DaemonKind, int>> {};

TEST_P(DaemonSweep, SpanningTreeStabilizesUnderEveryDaemon) {
  const auto [daemon, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  const graph::Graph g = graph::random_connected(20, 10, rng);
  const SpanningTreeProtocol protocol(g.n());
  std::vector<local::State> states = garbage_states(g, rng);

  // Budget: central daemon activates one node per step, so allow O(n^2)
  // steps; synchronous/distributed need far fewer.
  const std::size_t budget = 40 * g.n() * g.n();
  const DaemonRun run =
      run_under_daemon(g, states, protocol.step(), daemon, rng, budget);
  EXPECT_TRUE(run.converged);
  EXPECT_EQ(states, protocol.legitimate(g));
  EXPECT_TRUE(SpanningTreeProtocol::detectors(g, states).empty());
}

INSTANTIATE_TEST_SUITE_P(
    Daemons, DaemonSweep,
    ::testing::Combine(::testing::Values(DaemonKind::kSynchronous,
                                         DaemonKind::kCentral,
                                         DaemonKind::kDistributed),
                       ::testing::Values(1, 2, 3, 4)));

TEST(Daemon, LegitimateStateHasNoEnabledNodes) {
  const graph::Graph g = graph::grid(4, 4);
  const SpanningTreeProtocol protocol(g.n());
  std::vector<local::State> states = protocol.legitimate(g);
  util::Rng rng(5);
  const DaemonRun run = run_under_daemon(g, states, protocol.step(),
                                         DaemonKind::kCentral, rng, 100);
  EXPECT_TRUE(run.converged);
  EXPECT_EQ(run.steps, 0u);
  EXPECT_EQ(run.activations, 0u);
}

TEST(Daemon, CentralActivatesOnePerStep) {
  util::Rng rng(7);
  const graph::Graph g = graph::path(10);
  const SpanningTreeProtocol protocol(g.n());
  std::vector<local::State> states = garbage_states(g, rng);
  const DaemonRun run = run_under_daemon(g, states, protocol.step(),
                                         DaemonKind::kCentral, rng, 100000);
  EXPECT_TRUE(run.converged);
  EXPECT_EQ(run.activations, run.steps);
}

TEST(Daemon, SynchronousMatchesSyncNetwork) {
  util::Rng rng(9);
  const graph::Graph g = graph::grid(3, 5);
  const SpanningTreeProtocol protocol(g.n());
  std::vector<local::State> daemon_states = garbage_states(g, rng);
  std::vector<local::State> network_states = daemon_states;

  util::Rng daemon_rng(1);
  run_under_daemon(g, daemon_states, protocol.step(),
                   DaemonKind::kSynchronous, daemon_rng, 10 * g.n());

  auto shared = std::make_shared<const graph::Graph>(g);
  local::SyncNetwork net(shared, network_states);
  net.run_until_quiescent(protocol.step(), 10 * g.n());

  EXPECT_EQ(daemon_states, net.states());
}

TEST(Daemon, NonConvergentProtocolReportsFailure) {
  // A rule that flips a bit forever never converges under any daemon.
  const graph::Graph g = graph::path(3);
  const local::StepFn flip = [](graph::RawId, const local::State& own,
                                std::span<const local::NeighborState>) {
    util::BitReader r = own.reader();
    const auto bit = r.read_bit();
    return local::State::of_uint(bit && *bit ? 0 : 1, 1);
  };
  std::vector<local::State> states(3, local::State::of_uint(0, 1));
  util::Rng rng(11);
  const DaemonRun run =
      run_under_daemon(g, states, flip, DaemonKind::kDistributed, rng, 50);
  EXPECT_FALSE(run.converged);
  EXPECT_EQ(run.steps, 50u);
}

}  // namespace
}  // namespace pls::selfstab
