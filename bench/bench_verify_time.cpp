// Experiment T3 — verification cost.
//
// The verifier runs for a single round; its per-node work is O(deg) parses
// and comparisons (x O(log n) phases for MST).  google-benchmark timers give
// ns per full-network verification; the table reports the message volume of
// the verification round (certificate bits crossing edges).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "pls/engine.hpp"

namespace {

using namespace pls;

// Base seed (--seed, default 0 = the published timings); set in main()
// before google-benchmark registration, XOR-salted into the historic
// per-benchmark seed literals.
std::uint64_t g_seed = 0;

const schemes::SchemeEntry& entry_at(std::size_t index) {
  static const auto catalog = schemes::standard_catalog();
  return catalog.at(index);
}

void BM_VerifyNetwork(benchmark::State& state) {
  const schemes::SchemeEntry& entry = entry_at(
      static_cast<std::size_t>(state.range(0)));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  auto g = bench::graph_for(entry, n, g_seed ^ 21);
  util::Rng rng(g_seed ^ 23);
  const local::Configuration cfg = entry.language->sample_legal(g, rng);
  const core::Labeling lab = entry.scheme->mark(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_verifier(*entry.scheme, cfg, lab));
  }
  state.SetLabel(entry.label);
  state.counters["nodes"] = static_cast<double>(n);
  state.counters["ns_per_node"] = benchmark::Counter(
      static_cast<double>(n), benchmark::Counter::kIsIterationInvariantRate |
                                  benchmark::Counter::kInvert);
}

void register_benchmarks() {
  const auto catalog = schemes::standard_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i)
    benchmark::RegisterBenchmark("verify", &BM_VerifyNetwork)
        ->ArgsProduct({{static_cast<long>(i)}, {64, 256, 1024}})
        ->ArgNames({"scheme", "n"});
}

void print_message_volume_table() {
  bench::print_header(
      "T3: verification round message volume",
      "bits exchanged during the single verification round (certificates, "
      "plus states/ids in the extended mode)");
  util::Table table({"scheme", "n", "round bits", "bits/edge"});
  for (const schemes::SchemeEntry& entry : schemes::standard_catalog()) {
    for (const std::size_t n : {64u, 1024u}) {
      auto g = bench::graph_for(entry, n, g_seed ^ 21);
      util::Rng rng(g_seed ^ 23);
      const local::Configuration cfg = entry.language->sample_legal(g, rng);
      const core::Labeling lab = entry.scheme->mark(cfg);
      const std::size_t bits =
          core::verification_round_bits(*entry.scheme, cfg, lab);
      table.row(entry.label, n, bits,
                static_cast<double>(bits) / static_cast<double>(g->m()));
    }
  }
  table.print(std::cout);
  std::cout << "\nTimings (google-benchmark):\n";
}

}  // namespace

int main(int argc, char** argv) {
  // --seed is ours; everything else (--benchmark_filter, ...) passes
  // through to google-benchmark untouched.
  pls::bench::CliArgs args(argc, argv);
  g_seed = args.take_seed(0);
  std::vector<std::string> leftover = args.unrecognized();
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (std::string& a : leftover) rest.push_back(a.data());
  int rest_argc = static_cast<int>(rest.size());
  pls::bench::echo_seed(g_seed);

  print_message_volume_table();
  register_benchmarks();
  benchmark::Initialize(&rest_argc, rest.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
