// Experiment R1 — the proof-size / verification-time tradeoff (t-PLS).
//
// Sweeps verification radius t in {1, 2, 4, 8} against network size n in
// {2^8 .. 2^14} for the spanning-tree scheme, and in {2^8, 2^10, 2^12} for
// MST, certifying over graphs with a large id space (ids up to 2^56, so the
// shared id content dominates the certificate).  t = 1 is the plain 1-round
// scheme; t > 1 is the global spread transform for the spanning tree and the
// *fragment* spread for MST — Borůvka certificates share content per
// fragment, not globally, so MST only joins the tradeoff curve through the
// region decomposition (it used to be this bench's honest negative).  Rows
// report max/avg certificate bits, verifier wall-time, and t-round message
// volume as JSON; the MST curve at n = 4096 is asserted strictly decreasing
// in t.
//
// Usage: bench_radius_tradeoff [--smoke] [--out FILE] [--scheme S]
//                              [--seed S] [--threads T] [--t T]
//                              [--labelings L]
//   --smoke       small sweep (stp: n in {256, 1024}, t in {1, 2, 4};
//                 mst: n = 256) for CI
//   --out         write the JSON there instead of stdout
//   --scheme S    restrict to one curve: "stp" or "mst" (default: both)
//   --seed S      base RNG seed for instances and configurations (echoed
//                 into the JSON; default reproduces the published curves)
//   --threads T   verifier thread count (default 1: the deterministic
//                 sequential path the published curves use)
//   --t T         restrict the radius sweep to that single t (skips the
//                 MST strict-decrease gate, which needs the whole curve)
//   --labelings L verify each row's marking L times through one
//                 BatchVerifier (shared geometry atlas; verify_ms is the
//                 per-labeling average — the many-labelings regime)
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "radius/batch.hpp"
#include "radius/fragment_spread.hpp"
#include "radius/spread.hpp"
#include "schemes/mst.hpp"
#include "schemes/spanning_tree.hpp"
#include "util/assert.hpp"

namespace {

using namespace pls;

constexpr graph::RawId kIdSpace = graph::RawId{1} << 56;

struct Row {
  std::string scheme;
  std::size_t n = 0;
  unsigned t = 0;
  std::size_t max_cert_bits = 0;
  double avg_cert_bits = 0.0;
  double verify_ms = 0.0;
  std::size_t round_bits = 0;
  bool all_accept = false;
};

std::shared_ptr<const graph::Graph> instance(std::size_t n, bool weighted,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  graph::Graph g = graph::random_connected(n, n / 2, rng);
  if (weighted) g = graph::reweight_random(g, rng);
  return std::make_shared<const graph::Graph>(
      graph::relabel_random(g, rng, kIdSpace));
}

/// Default base seed; --seed overrides.  The configuration RNG is salted so
/// the default reproduces the historical instance/configuration pair
/// (instance seed 0x9E3779B9 ^ n, configuration seed 0xC0FFEE ^ n) exactly.
constexpr std::uint64_t kDefaultSeed = 0x9E3779B9ull;
constexpr std::uint64_t kCfgSalt = 0x9E3779B9ull ^ 0xC0FFEEull;

/// Sweep-wide knobs threaded through every measure() call.
struct MeasureOptions {
  std::uint64_t seed = kDefaultSeed;  ///< base RNG seed (--seed)
  unsigned threads = 1;      ///< verifier thread count
  std::size_t labelings = 1; ///< repeats per row through one BatchVerifier
};

Row measure(const core::Scheme& scheme, const local::Configuration& cfg,
            unsigned t, const MeasureOptions& mopts) {
  Row row;
  row.scheme = std::string(scheme.name());
  row.n = cfg.n();
  row.t = t;

  const core::Labeling lab = scheme.mark(cfg);
  row.max_cert_bits = lab.max_bits();
  row.avg_cert_bits =
      static_cast<double>(lab.total_bits()) / static_cast<double>(cfg.n());

  radius::BatchOptions options;
  options.threads = mopts.threads;
  radius::BatchVerifier verifier(scheme, cfg, t, options);
  const auto start = std::chrono::steady_clock::now();
  bool all_accept = verifier.run_one(lab).all_accept();
  for (std::size_t rep = 1; rep < mopts.labelings; ++rep)
    if (!verifier.run_one(lab).all_accept()) all_accept = false;
  const auto stop = std::chrono::steady_clock::now();
  row.verify_ms =
      std::chrono::duration<double, std::milli>(stop - start).count() /
      static_cast<double>(mopts.labelings);
  row.all_accept = all_accept;
  row.round_bits = radius::verification_round_bits_t(scheme, cfg, lab, t);
  return row;
}

void emit(std::ostream& out, const std::vector<Row>& rows,
          std::uint64_t seed) {
  obs::JsonWriter json(out);
  json.begin_object();
  json.kv("bench", "radius_tradeoff");
  json.kv("id_space", kIdSpace);
  json.kv("seed", seed);
  json.key("rows");
  json.begin_array();
  for (const Row& r : rows) {
    json.begin_object();
    json.kv("scheme", r.scheme);
    json.kv("n", r.n);
    json.kv("t", r.t);
    json.kv("max_cert_bits", r.max_cert_bits);
    json.kv("avg_cert_bits", r.avg_cert_bits);
    json.kv("verify_ms", r.verify_ms);
    json.kv("round_bits", r.round_bits);
    json.kv("all_accept", r.all_accept);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  PLS_ASSERT(json.finished());
}

/// Sweeps one (language, base) curve.  `make_spread` builds the radius-t
/// transform under test for t > 1: the global SpreadScheme for globally
/// redundant certificates, FragmentSpreadScheme for regionally redundant
/// ones (MST).
template <typename BaseScheme, typename Language, typename MakeSpread>
void sweep(std::vector<Row>& rows, const Language& language,
           const BaseScheme& base, bool weighted,
           const std::vector<std::size_t>& sizes,
           const std::vector<unsigned>& radii, const MeasureOptions& mopts,
           MakeSpread make_spread) {
  for (const std::size_t n : sizes) {
    auto g = instance(n, weighted, mopts.seed ^ n);
    util::Rng rng((mopts.seed ^ kCfgSalt) ^ n);
    const local::Configuration cfg = language.sample_legal(g, rng);
    for (const unsigned t : radii) {
      if (t == 1) {
        rows.push_back(measure(base, cfg, 1, mopts));
      } else {
        const auto spread = make_spread(base, t);
        rows.push_back(measure(*spread, cfg, t, mopts));
      }
      const Row& r = rows.back();
      std::cerr << r.scheme << " n=" << r.n << " t=" << r.t
                << " max_bits=" << r.max_cert_bits
                << " verify_ms=" << r.verify_ms << "\n";
      PLS_ASSERT(r.all_accept);
    }
  }
}

/// The acceptance gate the fragment spread exists for: the MST maximum
/// certificate strictly decreases across the radius sweep at `gate_n`, for
/// radii up to `max_t`.  The full run gates the whole curve at n = 4096;
/// the CI smoke run gates t = 1 -> 2 at n = 256 (beyond t = 2 the small
/// instance's maximum is pinned by per-node tree fields and only required
/// to be monotone, which measure() has already asserted accepts-wise).
void assert_mst_strictly_decreasing(const std::vector<Row>& rows,
                                    std::size_t gate_n, unsigned max_t) {
  std::size_t prev = 0;
  bool first = true;
  for (const Row& r : rows) {
    if (r.n != gate_n || r.t > max_t ||
        r.scheme.find("mstl") == std::string::npos)
      continue;
    if (!first && r.max_cert_bits >= prev) {
      std::cerr << "FAIL: mst max_cert_bits not strictly decreasing at n="
                << gate_n << " (t=" << r.t << ": " << r.max_cert_bits
                << " >= " << prev << ")\n";
      std::abort();
    }
    prev = r.max_cert_bits;
    first = false;
  }
  PLS_ASSERT(!first);  // the gate rows must exist
}

}  // namespace

int main(int argc, char** argv) {
  bench::CliArgs args(argc, argv);
  const bool smoke = args.take_flag("smoke");
  const std::string out_path = args.take_value("out").value_or("");
  const std::string scheme_filter = args.take_value("scheme").value_or("");
  MeasureOptions mopts;
  mopts.seed = args.take_seed(kDefaultSeed);
  mopts.threads = args.take_unsigned("threads", 1);
  mopts.labelings = args.take_size("labelings", 1);
  const unsigned t_filter = args.take_unsigned("t", 0);
  if (!args.finish("bench_radius_tradeoff [--smoke] [--out FILE] "
                   "[--scheme stp|mst] [--seed S] [--threads T] [--t T] "
                   "[--labelings L]"))
    return 2;
  if (!scheme_filter.empty() && scheme_filter != "stp" &&
      scheme_filter != "mst") {
    std::cerr << "unknown --scheme " << scheme_filter
              << " (expected stp or mst)\n";
    return 2;
  }
  PLS_REQUIRE(mopts.threads >= 1 && mopts.labelings >= 1);

  std::vector<std::size_t> sizes;
  std::vector<unsigned> radii;
  std::vector<std::size_t> mst_sizes;
  if (smoke) {
    sizes = {256, 1024};
    radii = {1, 2, 4};
    mst_sizes = {256};
  } else {
    for (std::size_t n = 256; n <= 16384; n *= 2) sizes.push_back(n);
    radii = {1, 2, 4, 8};
    mst_sizes = {256, 1024, 4096};
  }
  if (t_filter != 0) radii = {t_filter};

  std::vector<Row> rows;
  if (scheme_filter.empty() || scheme_filter == "stp") {
    const schemes::StpLanguage stp_language;
    const schemes::StpScheme stp(stp_language);
    sweep(rows, stp_language, stp, /*weighted=*/false, sizes, radii, mopts,
          [](const core::Scheme& base, unsigned t) {
            return std::make_unique<radius::SpreadScheme>(base, t);
          });
  }

  if (scheme_filter.empty() || scheme_filter == "mst") {
    const schemes::MstLanguage mst_language;
    const schemes::MstScheme mst(mst_language);
    sweep(rows, mst_language, mst, /*weighted=*/true, mst_sizes, radii, mopts,
          [](const core::Scheme& base, unsigned t) {
            return std::make_unique<radius::FragmentSpreadScheme>(base, t);
          });
    // The strict-decrease gate needs the whole curve; a --t filter keeps
    // only one point of it.
    if (t_filter == 0) {
      if (smoke) {
        assert_mst_strictly_decreasing(rows, 256, 2);
      } else {
        assert_mst_strictly_decreasing(rows, 4096, 8);
      }
    }
  }

  if (out_path.empty()) {
    emit(std::cout, rows, mopts.seed);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    emit(out, rows, mopts.seed);
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
