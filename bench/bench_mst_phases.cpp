// Experiment F2 — MST certificate structure (figure: Borůvka phases vs n).
//
// The O(log^2 n) bound decomposes as (#phases) x (bits per phase) with
// #phases <= ceil(log2 n) + 1 and O(log n) bits per phase.  Expected shape:
// the phase count tracks log2(n) and per-phase bits stay near-constant in
// log n.
#include "bench_common.hpp"

#include <cmath>

#include "schemes/mst.hpp"

int main(int argc, char** argv) {
  using namespace pls;
  const auto base = bench::take_seed_only(argc, argv, "bench_mst_phases");
  if (!base) return 2;
  bench::print_header(
      "F2: MST Borůvka phase structure",
      "phase records vs ceil(log2 n)+1, and certificate bits per phase");
  bench::echo_seed(*base);

  const schemes::MstLanguage language;
  const schemes::MstScheme scheme(language);

  util::Table table({"n", "phases", "ceil(log2 n)+1", "total bits",
                     "bits/phase", "bound"});
  for (const std::size_t n : {4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    std::size_t max_phases = 0, max_bits = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      auto g = bench::weighted_graph(n, *base ^ seed);
      util::Rng rng(*base ^ seed);
      const local::Configuration cfg = language.sample_legal(g, rng);
      max_phases = std::max(max_phases, scheme.phase_records(cfg));
      max_bits = std::max(max_bits, scheme.mark(cfg).max_bits());
    }
    const std::size_t log_bound =
        static_cast<std::size_t>(std::ceil(std::log2(n))) + 1;
    table.row(n, max_phases, log_bound, max_bits,
              static_cast<double>(max_bits) / static_cast<double>(max_phases),
              scheme.proof_size_bound(n, 0));
  }
  table.print(std::cout);
  return 0;
}
