// Experiment T2 — completeness and soundness matrix.
//
// For every catalog scheme: (a) legal instances with honest certificates are
// accepted by every node; (b) corrupted (illegal) instances are rejected by
// at least one node under every adversary strategy, with the minimum
// rejection count achieved by the strongest adversary reported.
#include "bench_common.hpp"

#include "pls/adversary.hpp"
#include "pls/engine.hpp"

int main(int argc, char** argv) {
  using namespace pls;
  const auto seed = bench::take_seed_only(argc, argv, "bench_soundness");
  if (!seed) return 2;
  bench::print_header(
      "T2: completeness / soundness",
      "legal: fraction of nodes accepting (must be 1.0); illegal: adversary's "
      "minimum rejection count (must be >= 1) and its best strategy");
  bench::echo_seed(*seed);

  util::Table table({"scheme", "n", "legal accept rate", "illegal trials",
                     "min rejections", "best adversary"});
  const auto catalog = schemes::standard_catalog();
  core::AttackOptions options;
  options.hill_climb_steps = 150;
  options.random_trials = 4;
  options.splice_sources = 3;

  for (const schemes::SchemeEntry& entry : catalog) {
    for (const std::size_t n : {24u, 64u}) {
      auto g = bench::graph_for(entry, n, *seed ^ 11);
      util::Rng rng(*seed ^ 13);
      const local::Configuration legal = entry.language->sample_legal(g, rng);

      // Completeness.
      const core::Labeling lab = entry.scheme->mark(legal);
      const core::Verdict verdict = core::run_verifier(*entry.scheme, legal, lab);
      const double accept_rate =
          1.0 - static_cast<double>(verdict.rejections()) /
                    static_cast<double>(legal.n());

      // Soundness across corrupted instances.
      std::size_t trials = 0;
      std::size_t min_rejections = legal.n();
      std::string worst_strategy = "-";
      for (int t = 0; t < 6; ++t) {
        const auto corrupted = local::corrupt_random_states(legal, 2, rng);
        if (entry.language->contains(corrupted.config)) continue;
        ++trials;
        util::Rng attack_rng(*seed ^ static_cast<std::uint64_t>(100 + t));
        const core::AttackReport report =
            core::attack(*entry.scheme, corrupted.config, attack_rng, options);
        if (report.min_rejections < min_rejections) {
          min_rejections = report.min_rejections;
          worst_strategy = report.best_strategy;
        }
      }
      table.row(entry.label, n, accept_rate, trials,
                trials == 0 ? std::string("-") : std::to_string(min_rejections),
                trials == 0 ? "(state corruption cannot leave this language)"
                            : worst_strategy);
    }
  }
  table.print(std::cout);
  std::cout << "\nEvery 'min rejections' >= 1 row is a soundness witness; the "
               "paper requires at least one rejecting node on every illegal "
               "configuration.\n";
  return 0;
}
