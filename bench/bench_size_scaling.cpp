// Experiment F1 — certificate-size scaling (figure: bits vs n).
//
// Series for the three growth regimes the paper separates:
//   leader / stl      ~ Theta(log n)
//   mstl              ~ O(log^2 n)
//   universal(leader) ~ O(n^2 + n s)
// Expected shape: the log / log^2 / quadratic separation is visible in the
// columns; ratios to the theory predictor stay roughly constant.
#include "bench_common.hpp"

#include <cmath>

#include "pls/universal.hpp"
#include "schemes/leader.hpp"
#include "schemes/mst.hpp"
#include "schemes/spanning_tree.hpp"

int main(int argc, char** argv) {
  using namespace pls;
  const auto seed = bench::take_seed_only(argc, argv, "bench_size_scaling");
  if (!seed) return 2;
  bench::print_header("F1: certificate size scaling",
                      "max certificate bits vs n; log2(n) given for reference");
  bench::echo_seed(*seed);

  const schemes::LeaderLanguage leader_language;
  const schemes::LeaderScheme leader(leader_language);
  const schemes::StlLanguage stl_language;
  const schemes::StlScheme stl(stl_language);
  const schemes::MstLanguage mst_language;
  const schemes::MstScheme mst(mst_language);
  const core::UniversalScheme universal(leader_language);

  util::Table table({"n", "log2(n)", "leader bits", "stl bits", "mstl bits",
                     "universal bits"});
  for (const std::size_t n : {16u, 32u, 64u, 128u, 256u, 512u, 1024u, 2048u}) {
    util::Rng rng(*seed ^ 17);
    auto g = bench::standard_graph(n, *seed ^ 3);
    auto wg = bench::weighted_graph(n, *seed ^ 3);

    const std::size_t leader_bits =
        leader.mark(leader_language.sample_legal(g, rng)).max_bits();
    const std::size_t stl_bits =
        stl.mark(stl_language.sample_legal(g, rng)).max_bits();
    const std::size_t mst_bits =
        mst.mark(mst_language.sample_legal(wg, rng)).max_bits();
    // Universal certificates are Theta(n^2): cap the sweep to keep the run
    // short; larger n are extrapolated by the quadratic fit in T5.
    std::size_t uni_bits = 0;
    if (n <= 256)
      uni_bits =
          universal.mark(leader_language.sample_legal(g, rng)).max_bits();

    table.row(n, std::log2(static_cast<double>(n)), leader_bits, stl_bits,
              mst_bits, uni_bits == 0 ? std::string("-")
                                      : std::to_string(uni_bits));
  }
  table.print(std::cout);
  return 0;
}
