// Experiment R4 — multi-tenant serving over one shared geometry budget.
//
// Three tenants with deliberately different shapes — a flat spanning-tree
// verifier (stp t=1) on a large random instance, a deep spread (stp t=8) and
// a weighted MST fragment spread (mst t=4) on bounded-growth grids — share
// ONE serve::Server: one GeometryAtlas (256 MB by default, the budget the
// by-radius gauges attribute), one BatchVerifier per tenant, deficit
// round-robin over the per-tenant queues.
//
// The workload is OPEN LOOP: every tenant's requests arrive on a fixed
// schedule (one seeding full labeling, then single-certificate deltas at the
// tenant's offered rate) whether or not the server has caught up, so
// queueing delay lands in the measured latency exactly as a deployment
// would quote it.  The dispatcher submits frames at their arrival times and
// serves between arrivals; the per-tenant serve.latency_ns histograms come
// from the server itself.
//
// The number under test is FAIRNESS: with DRR no tenant's p99 should run
// away from the others even though their per-request costs differ — the
// --require-tenant-p99-ratio gate holds max(p99)/min(p99) under a bound
// (the CI smoke uses 3).  Verdicts are replayed per tenant against a fresh
// in-memory BatchVerifier (own atlas, same thread count) and asserted
// bit-identical to the wire-path responses — the zero-copy ingestion must
// never change a verdict.
//
// The default offered rate is derived, not hardcoded: a closed-loop warmup
// drains one copy of the whole workload as fast as the server can, and the
// open-loop phase then offers 70% of that measured capacity (the
// sustainable-regime convention; --arrival-rate overrides with an aggregate
// requests/sec).
//
// Usage: bench_serve_multitenant [--smoke] [--out FILE] [--seed S]
//                                [--threads T] [--deltas D]
//                                [--atlas-mb MB] [--arrival-rate A]
//                                [--require-tenant-p99-ratio R]
//   --smoke               shorter streams (CI-friendly)
//   --out FILE            write the JSON artifact there instead of stdout
//   --seed S              base RNG seed (echoed into the JSON)
//   --threads T           sweep threads per tenant verifier (default: hw)
//   --deltas D            delta requests per tenant (default 256; 96 smoke)
//   --atlas-mb MB         shared atlas budget in MiB (default 256)
//   --arrival-rate A      aggregate offered rate, requests/sec (default:
//                         0.7x the measured closed-loop capacity)
//   --require-tenant-p99-ratio R  fail if max(p99)/min(p99) across tenants
//                         exceeds R
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "radius/batch.hpp"
#include "radius/fragment_spread.hpp"
#include "schemes/mst.hpp"
#include "schemes/spanning_tree.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace pls;

constexpr std::uint64_t kDefaultSeed = 0x7E4A47'5EA7ull;

/// One tenant's pinned instance plus its request stream (the frames are
/// pre-encoded so the timed loops only move pointers).
struct TenantPlan {
  std::string name;
  const core::Scheme* scheme = nullptr;
  const local::Configuration* cfg = nullptr;
  unsigned t = 0;
  std::uint32_t id = 0;
  std::vector<serve::Server::Frame> frames;      ///< [0] is the seeding full
  std::vector<core::Labeling> states;            ///< labeling after frame i
  std::vector<graph::NodeIndex> touched;         ///< node of delta i (i >= 1)
};

serve::Server::Frame frame_of(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

/// Builds the tenant's stream: one full labeling (the scheme's honest
/// marking), then `deltas` single-certificate mutations encoded as delta
/// frames.  Mutations keep the certificate size small so the DRR cost of a
/// delta is its payload count (1), not a hidden byte volume.
void plan_stream(TenantPlan& plan, std::size_t deltas, util::Rng& rng) {
  const local::Configuration& cfg = *plan.cfg;
  core::Labeling current = plan.scheme->mark(cfg);
  plan.frames.push_back(frame_of(serve::encode_full(
      plan.id, cfg.graph().epoch(), plan.t, current)));
  plan.states.push_back(current);
  const auto n = static_cast<std::uint32_t>(cfg.n());
  for (std::size_t d = 0; d < deltas; ++d) {
    const auto v = static_cast<graph::NodeIndex>(rng.below(cfg.n()));
    if (rng.below(2) == 0) {
      current.certs[v] = current.certs[rng.below(cfg.n())];
    } else {
      current.certs[v] = local::random_state(rng.below(64), rng);
    }
    const std::vector<graph::NodeIndex> touched = {v};
    plan.frames.push_back(frame_of(serve::encode_delta(
        plan.id, cfg.graph().epoch(), plan.t, n, touched, current)));
    plan.states.push_back(current);
    plan.touched.push_back(v);
  }
}

/// A globally interleaved arrival order: round-robin over the tenants'
/// streams (tenant order rotates per round so no tenant always arrives
/// first in a burst).
struct Arrival {
  std::size_t tenant = 0;
  std::size_t index = 0;  ///< into that tenant's frames
};

std::vector<Arrival> interleave(const std::vector<TenantPlan>& plans) {
  std::vector<Arrival> order;
  std::size_t longest = 0;
  for (const TenantPlan& p : plans)
    longest = std::max(longest, p.frames.size());
  for (std::size_t i = 0; i < longest; ++i)
    for (std::size_t rot = 0; rot < plans.size(); ++rot) {
      const std::size_t tenant = (i + rot) % plans.size();
      if (i < plans[tenant].frames.size()) order.push_back({tenant, i});
    }
  return order;
}

struct TenantResult {
  std::string name;
  std::size_t n = 0;
  unsigned t = 0;
  std::size_t requests = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
};

struct RunResult {
  double offered_per_sec = 0.0;
  double sustained_per_sec = 0.0;
  double closed_loop_per_sec = 0.0;
  double window_s = 0.0;
  std::vector<TenantResult> tenants;
  double p99_ratio = 0.0;  ///< max p99 / min p99
  radius::AtlasStats atlas;
  bool verdicts_identical = false;
};

/// Drains one full copy of the workload through a fresh server as fast as
/// possible; returns aggregate requests/sec (the capacity estimate the
/// open-loop rate defaults against) and the responses for verdict replay.
double closed_loop_capacity(const std::vector<TenantPlan>& plans,
                            const std::vector<Arrival>& order,
                            const serve::ServerOptions& base_options) {
  serve::ServerOptions options = base_options;
  options.metrics = nullptr;
  options.atlas = nullptr;  // private atlas: don't warm the measured one
  serve::Server server(options);
  std::vector<std::uint32_t> ids(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i)
    ids[i] = server.add_tenant(plans[i].name, *plans[i].scheme,
                               *plans[i].cfg, plans[i].t);
  // Tenant ids are assigned in registration order, so the pre-encoded
  // frames (which carry plan.id) stay valid as long as the order matches.
  for (std::size_t i = 0; i < plans.size(); ++i)
    PLS_REQUIRE(ids[i] == plans[i].id);
  const auto start = std::chrono::steady_clock::now();
  std::size_t total = 0;
  for (const Arrival& a : order) {
    server.submit(plans[a.tenant].frames[a.index], serve::Server::now_ns());
    ++total;
  }
  const std::vector<serve::Server::Response> responses = server.drain();
  const auto stop = std::chrono::steady_clock::now();
  PLS_ASSERT(responses.size() == total);
  for (const serve::Server::Response& r : responses)
    PLS_REQUIRE(r.wire_ok);
  const double secs = std::chrono::duration<double>(stop - start).count();
  return static_cast<double>(total) / secs;
}

RunResult run_open_loop(const std::vector<TenantPlan>& plans,
                        const std::vector<Arrival>& order,
                        const serve::ServerOptions& base_options,
                        std::size_t atlas_bytes, double arrival_rate,
                        unsigned threads) {
  RunResult result;
  result.closed_loop_per_sec =
      closed_loop_capacity(plans, order, base_options);
  result.offered_per_sec = arrival_rate > 0.0
                               ? arrival_rate
                               : 0.7 * result.closed_loop_per_sec;

  obs::MetricsRegistry registry;
  radius::AtlasOptions atlas_options;
  atlas_options.byte_budget = atlas_bytes;
  serve::ServerOptions options = base_options;
  options.metrics = &registry;
  options.atlas = std::make_shared<radius::GeometryAtlas>(atlas_options);
  serve::Server server(options);
  for (const TenantPlan& p : plans)
    PLS_REQUIRE(server.add_tenant(p.name, *p.scheme, *p.cfg, p.t) == p.id);

  // The dispatcher loop: submit each frame at its scheduled arrival time,
  // serve queued requests between arrivals, then drain.  Latency is
  // measured by the server from the SCHEDULED arrival (passed to submit),
  // so a sweep that overruns its slot charges the overrun to the requests
  // queued behind it.
  std::vector<serve::Server::Response> responses;
  responses.reserve(order.size());
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t start_ns = serve::Server::now_ns();
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto scheduled =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(
                        static_cast<double>(i) / result.offered_per_sec));
    // Serve while waiting for the next arrival; sleep only when idle.
    while (std::chrono::steady_clock::now() < scheduled) {
      if (std::optional<serve::Server::Response> r = server.serve_next()) {
        responses.push_back(std::move(*r));
      } else {
        std::this_thread::sleep_until(scheduled);
      }
    }
    const std::uint64_t arrival_ns =
        start_ns + static_cast<std::uint64_t>(
                       1e9 * static_cast<double>(i) / result.offered_per_sec);
    server.submit(plans[order[i].tenant].frames[order[i].index], arrival_ns);
  }
  for (serve::Server::Response& r : server.drain())
    responses.push_back(std::move(r));
  const auto stop = std::chrono::steady_clock::now();
  result.window_s = std::chrono::duration<double>(stop - start).count();
  result.sustained_per_sec =
      static_cast<double>(order.size()) / result.window_s;
  result.atlas = server.atlas()->stats();

  // Per-tenant latency: the server's own serve.latency_ns.<name> histograms.
  const obs::MetricsSnapshot snap = registry.snapshot();
  double best_p99 = 0.0, worst_p99 = 0.0;
  for (const TenantPlan& p : plans) {
    const obs::HistogramSnapshot& h =
        snap.histograms.at("serve.latency_ns." + p.name);
    TenantResult tr;
    tr.name = p.name;
    tr.n = p.cfg->n();
    tr.t = p.t;
    tr.requests = h.count;
    tr.p50_ms = static_cast<double>(h.quantile(0.5)) / 1e6;
    tr.p99_ms = static_cast<double>(h.quantile(0.99)) / 1e6;
    tr.mean_ms = h.count == 0 ? 0.0
                              : static_cast<double>(h.sum) /
                                    (1e6 * static_cast<double>(h.count));
    PLS_REQUIRE(tr.requests == p.frames.size());
    best_p99 = best_p99 == 0.0 ? tr.p99_ms : std::min(best_p99, tr.p99_ms);
    worst_p99 = std::max(worst_p99, tr.p99_ms);
    result.tenants.push_back(std::move(tr));
  }
  result.p99_ratio = best_p99 > 0.0 ? worst_p99 / best_p99 : 0.0;

  // Verdict identity: replay every tenant's stream through a fresh
  // in-memory BatchVerifier (own default atlas, same thread count) and
  // compare against the wire-path verdicts, matched by (tenant, seq order).
  std::vector<std::vector<const serve::Server::Response*>> by_tenant(
      plans.size());
  for (const serve::Server::Response& r : responses) {
    PLS_REQUIRE(r.wire_ok);
    by_tenant[r.tenant_id].push_back(&r);
  }
  bool identical = true;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const TenantPlan& p = plans[i];
    std::sort(by_tenant[i].begin(), by_tenant[i].end(),
              [](const serve::Server::Response* a,
                 const serve::Server::Response* b) { return a->seq < b->seq; });
    PLS_REQUIRE(by_tenant[i].size() == p.frames.size());
    radius::BatchOptions check;
    check.threads = threads;
    radius::BatchVerifier oracle(*p.scheme, *p.cfg, p.t, check);
    for (std::size_t j = 0; j < p.states.size(); ++j) {
      core::Verdict expect;
      if (j == 0) {
        expect = oracle.run_one(p.states[0]);
      } else {
        radius::LabelingDelta delta;
        delta.touched = {p.touched[j - 1]};
        expect = oracle.run_delta(p.states[j], delta);
      }
      identical =
          identical && by_tenant[i][j]->verdict.accept() == expect.accept();
    }
  }
  result.verdicts_identical = identical;
  PLS_ASSERT(identical);
  return result;
}

void emit(std::ostream& out, const RunResult& r,
          const std::vector<TenantPlan>& plans, std::size_t atlas_bytes,
          unsigned threads, std::uint64_t seed) {
  obs::JsonWriter json(out);
  json.begin_object();
  json.kv("bench", "serve_multitenant");
  json.kv("seed", seed);
  json.kv("threads", threads);
  json.kv("tenant_count", plans.size());
  json.kv("atlas_byte_budget", atlas_bytes);
  json.kv("closed_loop_per_sec", r.closed_loop_per_sec);
  json.kv("offered_per_sec", r.offered_per_sec);
  json.kv("sustained_per_sec", r.sustained_per_sec);
  json.kv("window_s", r.window_s);
  json.kv("p99_ratio", r.p99_ratio);
  json.kv("verdicts_identical", r.verdicts_identical);
  json.key("tenants");
  json.begin_array();
  for (const TenantResult& t : r.tenants) {
    json.begin_object();
    json.kv("name", t.name);
    json.kv("n", t.n);
    json.kv("t", t.t);
    json.kv("requests", t.requests);
    json.kv("p50_ms", t.p50_ms);
    json.kv("p99_ms", t.p99_ms);
    json.kv("mean_ms", t.mean_ms);
    json.end_object();
  }
  json.end_array();
  json.key("atlas");
  json.begin_object();
  json.kv("hits", r.atlas.hits);
  json.kv("misses", r.atlas.misses);
  json.kv("hit_rate", r.atlas.hit_rate());
  json.kv("evictions", r.atlas.evictions);
  json.kv("sketch_rejects", r.atlas.sketch_rejects);
  json.kv("bytes_in_use", r.atlas.bytes_in_use);
  json.kv("peak_bytes", r.atlas.peak_bytes);
  json.key("by_radius");
  json.begin_object();
  for (const auto& [t, rb] : r.atlas.by_radius) {
    // Built with += rather than operator+(const char*, string&&), which
    // trips GCC 12's -Wrestrict false positive when inlined here.
    std::string rkey = "r";
    rkey += std::to_string(t);
    json.key(rkey);
    json.begin_object();
    json.kv("bytes_in_use", rb.bytes_in_use);
    json.kv("peak_bytes", rb.peak_bytes);
    json.end_object();
  }
  json.end_object();
  json.end_object();
  json.end_object();
  PLS_ASSERT(json.finished());
}

// ---------------------------------------------------------------------------
// Overload phase — graceful degradation under offered load beyond capacity.
//
// Requested with --overload-out and/or --require-goodput-ratio.  The streams
// here are FULLS ONLY (each tenant cycles kOverloadVariants pre-built
// labelings) so that shedding a request never invalidates a later one — a
// shed delta would orphan the whole remaining chain and measure the
// workload's fragility, not the server's.  A closed-loop probe measures
// capacity, then each ladder point {0.7, 1.0, 1.5, 2.0}x offers load open
// loop against a FRESH server with a bounded queue
// (6 x max tenant n of DRR cost, ~6 fulls deep for the largest tenant) and
// a wire-carried TTL of --overload-ttl-x mean service times.  Graceful
// degradation means: past saturation, goodput holds near capacity (the
// --require-goodput-ratio gate), accepted-request p99 stays bounded by the
// TTL (deadline checks at submit, dispatch, mid-sweep, and post-run make
// serving late impossible — the gate allows 3x for measurement slack), and every
// SERVED verdict is bit-identical to a fresh in-memory oracle.

constexpr std::size_t kOverloadVariants = 4;
constexpr double kOverloadRates[] = {0.7, 1.0, 1.5, 2.0};

struct OverloadStream {
  std::vector<core::Labeling> variants;
  std::vector<core::Verdict> expect;         ///< oracle verdict per variant
  std::vector<serve::Server::Frame> frames;  ///< per variant, one encoding
};

std::vector<OverloadStream> plan_overload(const std::vector<TenantPlan>& plans,
                                          unsigned threads, util::Rng& rng) {
  std::vector<OverloadStream> streams(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const TenantPlan& p = plans[i];
    OverloadStream& s = streams[i];
    core::Labeling base = p.scheme->mark(*p.cfg);
    s.variants.push_back(base);
    for (std::size_t v = 1; v < kOverloadVariants; ++v) {
      core::Labeling labeling = base;
      const std::size_t mutations = std::max<std::size_t>(1, p.cfg->n() / 8);
      for (std::size_t m = 0; m < mutations; ++m) {
        const auto node = static_cast<graph::NodeIndex>(rng.below(p.cfg->n()));
        if (rng.below(2) == 0) {
          labeling.certs[node] = labeling.certs[rng.below(p.cfg->n())];
        } else {
          labeling.certs[node] = local::random_state(rng.below(64), rng);
        }
      }
      s.variants.push_back(std::move(labeling));
    }
    radius::BatchOptions check;
    check.threads = threads;
    radius::BatchVerifier oracle(*p.scheme, *p.cfg, p.t, check);
    for (const core::Labeling& labeling : s.variants)
      s.expect.push_back(oracle.run_one(labeling));
  }
  return streams;
}

/// (Re-)encodes every variant frame; ttl_ns == 0 emits version-1 frames
/// (the capacity probe has no deadline), nonzero emits version-2.
void encode_overload(const std::vector<TenantPlan>& plans,
                     std::vector<OverloadStream>& streams,
                     std::uint64_t ttl_ns) {
  for (std::size_t i = 0; i < plans.size(); ++i) {
    streams[i].frames.clear();
    for (const core::Labeling& labeling : streams[i].variants)
      streams[i].frames.push_back(frame_of(
          serve::encode_full(plans[i].id, plans[i].cfg->graph().epoch(),
                             plans[i].t, labeling, ttl_ns)));
  }
}

struct OverloadPoint {
  double rate_x = 0.0;
  double offered_per_sec = 0.0;
  std::size_t accepted = 0;  ///< served with a verdict
  std::size_t shed = 0;      ///< kOverloaded at submit
  std::size_t expired = 0;   ///< kExpired at any checkpoint (submit..post-run)
  std::uint64_t cancelled_sweeps = 0;
  double goodput_per_sec = 0.0;
  double accepted_p99_ms = 0.0;  ///< worst tenant's served-latency p99
  double window_s = 0.0;
};

struct OverloadResult {
  double closed_loop_per_sec = 0.0;
  std::uint64_t ttl_ns = 0;
  std::uint64_t max_queued_cost = 0;
  std::size_t requests_per_tenant = 0;
  std::vector<OverloadPoint> points;
  double goodput_ratio_at_max = 0.0;
  bool verdicts_identical = true;
};

double overload_capacity(const std::vector<TenantPlan>& plans,
                         const std::vector<OverloadStream>& streams,
                         std::size_t requests_per_tenant,
                         const serve::ServerOptions& base_options) {
  serve::ServerOptions options = base_options;
  options.metrics = nullptr;
  options.atlas = nullptr;  // private atlas, like every ladder point's
  serve::Server server(options);
  for (const TenantPlan& p : plans)
    PLS_REQUIRE(server.add_tenant(p.name, *p.scheme, *p.cfg, p.t) == p.id);
  const auto start = std::chrono::steady_clock::now();
  std::size_t total = 0;
  for (std::size_t r = 0; r < requests_per_tenant; ++r)
    for (std::size_t rot = 0; rot < plans.size(); ++rot) {
      const std::size_t tenant = (r + rot) % plans.size();
      server.submit(streams[tenant].frames[r % kOverloadVariants],
                    serve::Server::now_ns());
      ++total;
    }
  const std::vector<serve::Server::Response> responses = server.drain();
  const auto stop = std::chrono::steady_clock::now();
  PLS_ASSERT(responses.size() == total);
  for (const serve::Server::Response& r : responses) PLS_REQUIRE(r.wire_ok);
  const double secs = std::chrono::duration<double>(stop - start).count();
  return static_cast<double>(total) / secs;
}

OverloadPoint run_overload_point(const std::vector<TenantPlan>& plans,
                                 const std::vector<OverloadStream>& streams,
                                 std::size_t requests_per_tenant, double rate_x,
                                 double capacity,
                                 const serve::ServerOptions& base_options,
                                 std::uint64_t max_queued_cost,
                                 bool* verdicts_identical) {
  OverloadPoint point;
  point.rate_x = rate_x;
  point.offered_per_sec = rate_x * capacity;

  obs::MetricsRegistry registry;
  serve::ServerOptions options = base_options;
  options.metrics = &registry;
  options.atlas = nullptr;  // fresh server AND atlas: points are independent
  options.max_queued_cost = max_queued_cost;
  serve::Server server(options);
  for (const TenantPlan& p : plans)
    PLS_REQUIRE(server.add_tenant(p.name, *p.scheme, *p.cfg, p.t) == p.id);

  std::vector<serve::Server::Response> responses;
  responses.reserve(requests_per_tenant * plans.size());
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t start_ns = serve::Server::now_ns();
  std::size_t submitted = 0;
  for (std::size_t r = 0; r < requests_per_tenant; ++r)
    for (std::size_t rot = 0; rot < plans.size(); ++rot) {
      const std::size_t tenant = (r + rot) % plans.size();
      const auto scheduled =
          start +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(static_cast<double>(submitted) /
                                            point.offered_per_sec));
      while (std::chrono::steady_clock::now() < scheduled) {
        if (std::optional<serve::Server::Response> resp = server.serve_next()) {
          responses.push_back(std::move(*resp));
        } else {
          std::this_thread::sleep_until(scheduled);
        }
      }
      const std::uint64_t arrival_ns =
          start_ns +
          static_cast<std::uint64_t>(1e9 * static_cast<double>(submitted) /
                                     point.offered_per_sec);
      server.submit(streams[tenant].frames[r % kOverloadVariants], arrival_ns);
      ++submitted;
    }
  for (serve::Server::Response& resp : server.drain())
    responses.push_back(std::move(resp));
  const auto stop = std::chrono::steady_clock::now();
  point.window_s = std::chrono::duration<double>(stop - start).count();

  // Classify the outcome of every submission; the fulls-only workload can
  // only be served, shed, or expired — any other rejection is a bench bug.
  std::vector<std::vector<const serve::Server::Response*>> by_tenant(
      plans.size());
  for (const serve::Server::Response& resp : responses) {
    if (resp.wire_ok) {
      ++point.accepted;
    } else if (resp.rejection.kind == serve::RejectKind::kOverloaded) {
      ++point.shed;
    } else if (resp.rejection.kind == serve::RejectKind::kExpired) {
      ++point.expired;
    } else {
      PLS_REQUIRE(false);
    }
    by_tenant[resp.tenant_id].push_back(&resp);
  }
  PLS_ASSERT(point.accepted + point.shed + point.expired ==
             requests_per_tenant * plans.size());
  point.goodput_per_sec = static_cast<double>(point.accepted) / point.window_s;

  // Served verdicts must match the oracle: tenant responses sorted by seq
  // are that tenant's submissions in order, so position j used variant
  // j % kOverloadVariants even when some submissions were shed.
  for (std::size_t i = 0; i < plans.size(); ++i) {
    std::sort(by_tenant[i].begin(), by_tenant[i].end(),
              [](const serve::Server::Response* a,
                 const serve::Server::Response* b) { return a->seq < b->seq; });
    PLS_REQUIRE(by_tenant[i].size() == requests_per_tenant);
    for (std::size_t j = 0; j < by_tenant[i].size(); ++j)
      if (by_tenant[i][j]->wire_ok &&
          by_tenant[i][j]->verdict.accept() !=
              streams[i].expect[j % kOverloadVariants].accept())
        *verdicts_identical = false;
  }

  const obs::MetricsSnapshot snap = registry.snapshot();
  point.cancelled_sweeps = snap.counters.at("serve.cancelled_sweeps");
  for (const TenantPlan& p : plans) {
    const obs::HistogramSnapshot& h =
        snap.histograms.at("serve.latency_ns." + p.name);
    if (h.count > 0)
      point.accepted_p99_ms =
          std::max(point.accepted_p99_ms,
                   static_cast<double>(h.quantile(0.99)) / 1e6);
  }
  return point;
}

OverloadResult run_overload(const std::vector<TenantPlan>& plans,
                            const serve::ServerOptions& base_options,
                            std::size_t requests_per_tenant, double ttl_x,
                            unsigned threads, util::Rng& rng) {
  OverloadResult result;
  result.requests_per_tenant = requests_per_tenant;
  std::vector<OverloadStream> streams = plan_overload(plans, threads, rng);
  encode_overload(plans, streams, 0);  // deadline-free capacity probe
  result.closed_loop_per_sec =
      overload_capacity(plans, streams, requests_per_tenant, base_options);
  result.ttl_ns =
      static_cast<std::uint64_t>(ttl_x * 1e9 / result.closed_loop_per_sec);
  std::size_t max_n = 0;
  for (const TenantPlan& p : plans) max_n = std::max(max_n, p.cfg->n());
  result.max_queued_cost = 6 * static_cast<std::uint64_t>(max_n);
  encode_overload(plans, streams, result.ttl_ns);
  for (const double rate_x : kOverloadRates)
    result.points.push_back(run_overload_point(
        plans, streams, requests_per_tenant, rate_x,
        result.closed_loop_per_sec, base_options, result.max_queued_cost,
        &result.verdicts_identical));
  result.goodput_ratio_at_max =
      result.points.back().goodput_per_sec / result.closed_loop_per_sec;
  PLS_ASSERT(result.verdicts_identical);
  return result;
}

void emit_overload(std::ostream& out, const OverloadResult& r,
                   unsigned threads, std::uint64_t seed) {
  obs::JsonWriter json(out);
  json.begin_object();
  json.kv("bench", "serve_multitenant_overload");
  json.kv("seed", seed);
  json.kv("threads", threads);
  json.kv("closed_loop_per_sec", r.closed_loop_per_sec);
  json.kv("ttl_ms", static_cast<double>(r.ttl_ns) / 1e6);
  json.kv("max_queued_cost", r.max_queued_cost);
  json.kv("requests_per_tenant", r.requests_per_tenant);
  json.key("points");
  json.begin_array();
  for (const OverloadPoint& p : r.points) {
    json.begin_object();
    json.kv("rate_x", p.rate_x);
    json.kv("offered_per_sec", p.offered_per_sec);
    json.kv("accepted", p.accepted);
    json.kv("shed", p.shed);
    json.kv("expired", p.expired);
    json.kv("cancelled_sweeps", p.cancelled_sweeps);
    json.kv("goodput_per_sec", p.goodput_per_sec);
    json.kv("accepted_p99_ms", p.accepted_p99_ms);
    json.kv("window_s", p.window_s);
    json.end_object();
  }
  json.end_array();
  json.kv("goodput_ratio_at_max", r.goodput_ratio_at_max);
  json.kv("verdicts_identical", r.verdicts_identical);
  json.end_object();
  PLS_ASSERT(json.finished());
}

}  // namespace

int main(int argc, char** argv) {
  bench::CliArgs args(argc, argv);
  const bool smoke = args.take_flag("smoke");
  const std::string out_path = args.take_value("out").value_or("");
  const std::uint64_t seed = args.take_seed(kDefaultSeed);
  const unsigned threads =
      args.take_unsigned("threads", util::ThreadPool::hardware_threads());
  const std::size_t deltas = args.take_size("deltas", smoke ? 96 : 256);
  const std::size_t atlas_mb = args.take_size("atlas-mb", 256);
  const double arrival_rate = args.take_double("arrival-rate", 0.0);
  const double require_p99_ratio =
      args.take_double("require-tenant-p99-ratio", 0.0);
  const std::string overload_out = args.take_value("overload-out").value_or("");
  const double require_goodput_ratio =
      args.take_double("require-goodput-ratio", 0.0);
  const std::size_t overload_requests =
      args.take_size("overload-requests", smoke ? 24 : 48);
  const double overload_ttl_x = args.take_double("overload-ttl-x", 25.0);
  if (!args.finish("bench_serve_multitenant [--smoke] [--out FILE] "
                   "[--seed S] [--threads T] [--deltas D] [--atlas-mb MB] "
                   "[--arrival-rate A] [--require-tenant-p99-ratio R] "
                   "[--overload-out FILE] [--require-goodput-ratio G] "
                   "[--overload-requests N] [--overload-ttl-x X]"))
    return 2;
  PLS_REQUIRE(deltas >= 1 && atlas_mb >= 1 && threads >= 1);

  // The three tenants.  Instance sizes are tuned so per-request service
  // times are within the same order of magnitude — fairness is about the
  // scheduler, not about one tenant's requests being intrinsically 100x
  // heavier: stp t=1 gets a large random instance (cheap per node), the
  // deep spreads get bounded-growth grids whose radius-t balls stay small.
  util::Rng rng(seed);
  const schemes::StpLanguage stp_language;
  const schemes::StpScheme stp(stp_language);
  const schemes::MstLanguage mst_language;
  const schemes::MstScheme mst(mst_language);

  auto g_flat = bench::standard_graph(smoke ? 1024 : 2048, rng.bits());
  util::Rng grid_rng(rng.bits());
  auto g_deep = bench::share(
      graph::relabel_random(graph::grid(32, 32), grid_rng));
  util::Rng mst_rng(rng.bits());
  auto g_mst = bench::share(graph::reweight_random(
      graph::relabel_random(graph::grid(32, 32), mst_rng), mst_rng));

  const local::Configuration cfg_flat = stp_language.sample_legal(g_flat, rng);
  const local::Configuration cfg_deep = stp_language.sample_legal(g_deep, rng);
  const local::Configuration cfg_mst = mst_language.sample_legal(g_mst, rng);

  const radius::FragmentSpreadScheme stp_t8(stp, 8);
  const radius::FragmentSpreadScheme mst_t4(mst, 4);

  std::vector<TenantPlan> plans(3);
  plans[0] = {"stp_t1", &stp, &cfg_flat, 1, 0, {}, {}, {}};
  plans[1] = {"stp_t8", &stp_t8, &cfg_deep, 8, 1, {}, {}, {}};
  plans[2] = {"mst_t4", &mst_t4, &cfg_mst, 4, 2, {}, {}, {}};
  for (TenantPlan& p : plans) {
    util::Rng stream_rng(rng.bits());
    plan_stream(p, deltas, stream_rng);
  }

  const std::vector<Arrival> order = interleave(plans);
  serve::ServerOptions base_options;
  base_options.threads = threads;

  const RunResult result =
      run_open_loop(plans, order, base_options, atlas_mb << 20, arrival_rate,
                    threads);

  std::cerr << "multitenant threads=" << threads
            << " offered_per_sec=" << result.offered_per_sec
            << " sustained_per_sec=" << result.sustained_per_sec
            << " p99_ratio=" << result.p99_ratio << "\n";
  for (const TenantResult& t : result.tenants)
    std::cerr << "  tenant " << t.name << " n=" << t.n << " t=" << t.t
              << " requests=" << t.requests << " p50_ms=" << t.p50_ms
              << " p99_ms=" << t.p99_ms << " mean_ms=" << t.mean_ms << "\n";

  if (out_path.empty()) {
    emit(std::cout, result, plans, atlas_mb << 20, threads, seed);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    emit(out, result, plans, atlas_mb << 20, threads, seed);
    std::cout << "wrote " << out_path << "\n";
  }

  if (require_p99_ratio > 0.0) {
    if (result.p99_ratio > require_p99_ratio) {
      std::cerr << "FAIL: tenant p99 ratio " << result.p99_ratio
                << " > allowed " << require_p99_ratio << "\n";
      return 1;
    }
    std::cerr << "tenant p99 ratio " << result.p99_ratio << " <= allowed "
              << require_p99_ratio << "\n";
  }

  if (!overload_out.empty() || require_goodput_ratio > 0.0) {
    PLS_REQUIRE(overload_requests >= kOverloadVariants &&
                overload_ttl_x > 0.0);
    const OverloadResult overload =
        run_overload(plans, base_options, overload_requests, overload_ttl_x,
                     threads, rng);
    const double ttl_ms = static_cast<double>(overload.ttl_ns) / 1e6;
    std::cerr << "overload closed_loop_per_sec=" << overload.closed_loop_per_sec
              << " ttl_ms=" << ttl_ms
              << " max_queued_cost=" << overload.max_queued_cost << "\n";
    for (const OverloadPoint& p : overload.points)
      std::cerr << "  rate_x=" << p.rate_x << " accepted=" << p.accepted
                << " shed=" << p.shed << " expired=" << p.expired
                << " cancelled_sweeps=" << p.cancelled_sweeps
                << " goodput_per_sec=" << p.goodput_per_sec
                << " accepted_p99_ms=" << p.accepted_p99_ms << "\n";
    if (overload_out.empty()) {
      emit_overload(std::cout, overload, threads, seed);
    } else {
      std::ofstream out(overload_out);
      if (!out) {
        std::cerr << "cannot open " << overload_out << "\n";
        return 1;
      }
      emit_overload(out, overload, threads, seed);
      std::cout << "wrote " << overload_out << "\n";
    }
    if (require_goodput_ratio > 0.0) {
      const OverloadPoint& at_max = overload.points.back();
      bool ok = true;
      if (overload.goodput_ratio_at_max < require_goodput_ratio) {
        std::cerr << "FAIL: goodput ratio at " << at_max.rate_x
                  << "x capacity is " << overload.goodput_ratio_at_max
                  << " < required " << require_goodput_ratio << "\n";
        ok = false;
      }
      if (at_max.accepted_p99_ms > 3.0 * ttl_ms) {
        std::cerr << "FAIL: accepted p99 " << at_max.accepted_p99_ms
                  << " ms at " << at_max.rate_x << "x capacity exceeds 3x ttl "
                  << ttl_ms << " ms\n";
        ok = false;
      }
      if (!ok) return 1;
      std::cerr << "overload gates hold: goodput ratio "
                << overload.goodput_ratio_at_max << " >= "
                << require_goodput_ratio << ", accepted p99 "
                << at_max.accepted_p99_ms << " ms <= 3x ttl " << ttl_ms
                << " ms\n";
    }
  }
  return 0;
}
