// Shared helpers for the experiment binaries.
//
// Every binary regenerates one table/figure from EXPERIMENTS.md and prints it
// in the same aligned format (util::Table).  Instances are deterministic
// (fixed seeds) so the outputs are reproducible run to run.
#pragma once

#include <iostream>
#include <memory>

#include "graph/generators.hpp"
#include "schemes/registry.hpp"
#include "util/table.hpp"

namespace pls::bench {

inline std::shared_ptr<const graph::Graph> share(graph::Graph g) {
  return std::make_shared<const graph::Graph>(std::move(g));
}

/// Connected random graph with ~1.5n edges (the default experiment topology).
inline std::shared_ptr<const graph::Graph> standard_graph(std::size_t n,
                                                          std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t extra = std::min(n / 2, n * (n - 1) / 2 - (n - 1));
  return share(graph::random_connected(n, extra, rng));
}

/// Same topology with distinct random weights (MST instances).
inline std::shared_ptr<const graph::Graph> weighted_graph(std::size_t n,
                                                          std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t extra = std::min(n / 2, n * (n - 1) / 2 - (n - 1));
  return share(
      graph::reweight_random(graph::random_connected(n, extra, rng), rng));
}

/// A graph satisfying the preconditions of the given catalog entry.
inline std::shared_ptr<const graph::Graph> graph_for(
    const schemes::SchemeEntry& entry, std::size_t n, std::uint64_t seed) {
  if (entry.needs_weighted) return weighted_graph(n, seed);
  if (entry.needs_bipartite) {
    const std::size_t rows = 2;
    return share(graph::grid(rows, (n + rows - 1) / rows));
  }
  return standard_graph(n, seed);
}

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

}  // namespace pls::bench
