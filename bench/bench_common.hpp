// Shared helpers for the experiment binaries.
//
// Every binary regenerates one table/figure from EXPERIMENTS.md and prints it
// in the same aligned format (util::Table).  Instances are deterministic
// (fixed seeds) so the outputs are reproducible run to run.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "obs/json.hpp"  // the one JSON emitter every bench artifact uses
#include "schemes/registry.hpp"
#include "util/table.hpp"

namespace pls::bench {

/// Tiny shared CLI parser for the experiment binaries: boolean `--flag`s and
/// `--key VALUE` pairs, consumed by name.  After all take_* calls,
/// `unrecognized()` holds whatever was left — a non-empty leftover set is the
/// caller's usage error.  Keeps every bench's flag handling (and the shared
/// --threads/--t/--labelings trio) in one place instead of five hand-rolled
/// argv loops.
class CliArgs {
 public:
  CliArgs(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  /// Consumes `--name` if present; returns whether it was.
  bool take_flag(const std::string& name) {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] != "--" + name) continue;
      args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
    return false;
  }

  /// Consumes `--name VALUE` if present; returns the value.
  std::optional<std::string> take_value(const std::string& name) {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] != "--" + name) continue;
      std::string value = args_[i + 1];
      args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i),
                  args_.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      return value;
    }
    return std::nullopt;
  }

  unsigned take_unsigned(const std::string& name, unsigned fallback) {
    return parse_numeric<unsigned>(name, fallback, [](const std::string& v) {
      reject_sign(v);  // stoul would silently wrap "-1" to 4294967295
      std::size_t pos = 0;
      const unsigned long x = std::stoul(v, &pos);
      reject_trailing(v, pos);  // "8x" must not silently parse as 8
      return static_cast<unsigned>(x);
    });
  }

  std::size_t take_size(const std::string& name, std::size_t fallback) {
    return parse_numeric<std::size_t>(
        name, fallback,
        [](const std::string& v) {
          reject_sign(v);
          std::size_t pos = 0;
          const unsigned long long x = std::stoull(v, &pos);
          reject_trailing(v, pos);  // "1e3" must not silently parse as 1
          return static_cast<std::size_t>(x);
        });
  }

  double take_double(const std::string& name, double fallback) {
    return parse_numeric<double>(
        name, fallback, [](const std::string& v) {
          std::size_t pos = 0;
          const double x = std::stod(v, &pos);
          reject_trailing(v, pos);
          return x;
        });
  }

  /// Consumes `--seed VALUE` (decimal or 0x-prefixed hex): the experiment's
  /// base RNG seed.  Every bench threads it through its instance/stream
  /// generators and echoes it into the JSON it emits, so any CI artifact
  /// names the exact inputs needed to reproduce it.
  std::uint64_t take_seed(std::uint64_t fallback) {
    return parse_numeric<std::uint64_t>(
        "seed", fallback, [](const std::string& v) {
          reject_sign(v);
          // Base 10 unless explicitly 0x-prefixed: base-0 stoull would read
          // a zero-padded "0100" as octal 64, silently breaking the
          // seed-in-JSON reproduction promise.
          const bool hex = v.size() > 2 && v[0] == '0' &&
                           (v[1] == 'x' || v[1] == 'X');
          std::size_t pos = 0;
          const unsigned long long x =
              std::stoull(hex ? v.substr(2) : v, &pos, hex ? 16 : 10);
          reject_trailing(hex ? v.substr(2) : v, pos);
          return static_cast<std::uint64_t>(x);
        });
  }

  /// Arguments no take_* call claimed; non-empty means a usage error.
  const std::vector<std::string>& unrecognized() const noexcept {
    return args_;
  }

  /// Prints any parse error or unclaimed argument plus `usage`; returns
  /// whether the command line was fully valid.
  bool finish(const std::string& usage) const {
    if (error_.empty() && args_.empty()) return true;
    if (!error_.empty()) {
      std::cerr << error_ << "\n";
    } else {
      std::cerr << "unrecognized argument: " << args_.front() << "\n";
    }
    std::cerr << "usage: " << usage << "\n";
    return false;
  }

 private:
  static void reject_sign(const std::string& v) {
    if (!v.empty() && (v.front() == '-' || v.front() == '+'))
      throw std::invalid_argument("signed value for an unsigned flag");
  }

  static void reject_trailing(const std::string& v, std::size_t parsed) {
    if (parsed != v.size())
      throw std::invalid_argument("trailing characters in numeric value");
  }

  template <typename T, typename Parse>
  T parse_numeric(const std::string& name, T fallback, Parse parse) {
    const auto v = take_value(name);
    if (!v) return fallback;
    try {
      return parse(*v);
    } catch (const std::exception&) {
      if (error_.empty())
        error_ = "invalid value for --" + name + ": '" + *v + "'";
      return fallback;
    }
  }

  std::vector<std::string> args_;
  std::string error_;
};

/// Zipf(s) rank sampler: P(rank r) proportional to 1/(r+1)^s over
/// [0, n).  The skewed-popularity generator behind the admission and
/// multi-tenant benches — rank 0 is the hottest item; compose with a random
/// permutation so popularity is not correlated with index order.  The CDF is
/// precomputed once (O(n) setup), each sample is one uniform draw plus a
/// binary search, so the stream is deterministic given the caller's Rng.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    double acc = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[r] = acc;
    }
    for (double& c : cdf_) c /= acc;
  }

  std::size_t sample(util::Rng& rng) const {
    const auto it =
        std::upper_bound(cdf_.begin(), cdf_.end(), rng.uniform01());
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

inline std::shared_ptr<const graph::Graph> share(graph::Graph g) {
  return std::make_shared<const graph::Graph>(std::move(g));
}

/// Connected random graph with ~1.5n edges (the default experiment topology).
inline std::shared_ptr<const graph::Graph> standard_graph(std::size_t n,
                                                          std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t extra = std::min(n / 2, n * (n - 1) / 2 - (n - 1));
  return share(graph::random_connected(n, extra, rng));
}

/// Same topology with distinct random weights (MST instances).
inline std::shared_ptr<const graph::Graph> weighted_graph(std::size_t n,
                                                          std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t extra = std::min(n / 2, n * (n - 1) / 2 - (n - 1));
  return share(
      graph::reweight_random(graph::random_connected(n, extra, rng), rng));
}

/// A graph satisfying the preconditions of the given catalog entry.
inline std::shared_ptr<const graph::Graph> graph_for(
    const schemes::SchemeEntry& entry, std::size_t n, std::uint64_t seed) {
  if (entry.needs_weighted) return weighted_graph(n, seed);
  if (entry.needs_bipartite) {
    const std::size_t rows = 2;
    return share(graph::grid(rows, (n + rows - 1) / rows));
  }
  return standard_graph(n, seed);
}

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

/// Standard --seed plumbing for the table benches whose only flag it is:
/// parses `--seed S` (default 0) and rejects anything else.  Returns
/// nullopt (usage already printed) on a bad command line.  XOR the returned
/// base into each historic seed literal — base 0 reproduces the published
/// tables bit-for-bit; any other base shifts every RNG stream reproducibly.
inline std::optional<std::uint64_t> take_seed_only(int argc, char** argv,
                                                   const std::string& name) {
  CliArgs args(argc, argv);
  const std::uint64_t seed = args.take_seed(0);
  if (!args.finish(name + " [--seed S]")) return std::nullopt;
  return seed;
}

/// The reproducibility echo: every bench prints the base seed it ran under,
/// so a captured output names the exact inputs needed to regenerate it.
inline void echo_seed(std::uint64_t seed) {
  std::cout << "seed: " << seed << " (base; 0 reproduces the published "
            << "tables)\n\n";
}

}  // namespace pls::bench
