// Experiment X2 (EXTENSION) — registry-wide rejection-density telemetry.
//
// For every scheme in the catalog: plant corruptions at increasing edit
// distance k, let the adversary suite minimize the rejection count, and
// record the density-vs-distance curve (obs::measure_density_curve).  A
// curve that is monotone AND grows across the sweep classifies the scheme
// as (observably) error-sensitive — the property that turns the verifier
// from a fuse into a gauge and lets self-stabilization recover locally in
// proportion to the damage.  Expected shape: leader / acyclic / stl / mstl
// grow roughly linearly; stp and regular stay flat (their counterexample
// constructions in src/sensitivity are the proof that no scheme for them
// can do better).
//
// Corruptions are language-aware where one exists (so the planted k really
// bounds the distance) and random-state otherwise; bipartite is skipped —
// its legal witnesses ignore states entirely, so no state corruption can
// leave the language.  An extra exact-distance curve (the k-disjoint-cycles
// chain for acyclic) anchors the classification: there the planted k IS the
// distance, not just an upper bound.
//
// Usage: bench_rejection_density [--smoke] [--out FILE] [--seed S]
//   --smoke  smaller sweep (n = 24, k in {1, 2, 4}, lighter adversary)
//   --out    write rejection_density.json there instead of stdout
//   --seed   base RNG seed (echoed into the JSON; default 0 reproduces the
//            published curves)
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"

#include "obs/density.hpp"
#include "schemes/acyclic.hpp"
#include "sensitivity/analysis.hpp"
#include "util/assert.hpp"

namespace {

using namespace pls;

/// A curve slot: the measured curve when the corruption protocol applies,
/// otherwise the reason it does not.
struct CurveResult {
  obs::DensityCurve curve;
  std::string corruptor;
  std::string skipped;  ///< non-empty = no curve, and why
};

/// Language-aware corruptor where the sensitivity module has one; coloring
/// gets a bench-local "copy a neighbor's color" edit (guaranteed illegal);
/// everything else falls back to random-state rewrites.
sensitivity::Corruptor corruptor_for(const std::string& label,
                                     std::string& name_out) {
  if (label == "leader") {
    name_out = "extra-leader-flags";
    return sensitivity::corrupt_leader;
  }
  if (label == "agree") {
    name_out = "common-value-rewrite";
    return sensitivity::corrupt_agree;
  }
  if (label == "stl" || label == "mstl") {
    name_out = "drop-list-edge";
    return sensitivity::corrupt_adjacency_list;
  }
  if (label == "coloring") {
    name_out = "copy-neighbor-color";
    return [](const local::Configuration& legal,
              const std::vector<graph::NodeIndex>& nodes, util::Rng& rng) {
      std::vector<local::State> states = legal.states();
      for (const graph::NodeIndex v : nodes) {
        const auto adj = legal.graph().adjacency(v);
        if (adj.empty()) continue;
        const auto pick = static_cast<std::size_t>(
            rng.below(static_cast<std::uint64_t>(adj.size())));
        states.at(v) = legal.state(adj[pick].to);  // neighbors now collide
      }
      return legal.with_states(std::move(states));
    };
  }
  name_out = "random-state";
  return obs::corrupt_random_state;
}

/// The exact-distance anchor: k disjoint cycles => distance to `acyclic` is
/// exactly k.  Hand-rolled (the instance changes with k, so the fixed-legal
/// measure_density_curve protocol does not apply).
CurveResult cycle_chain_curve(std::span<const std::size_t> planted,
                              std::uint64_t seed,
                              const core::AttackOptions& options) {
  const schemes::AcyclicLanguage language;
  const schemes::AcyclicScheme scheme(language);
  CurveResult result;
  result.corruptor = "cycle-chain (exact distance)";
  result.curve.scheme = "acyclic/cycle-chain";
  for (const std::size_t k : planted) {
    const sensitivity::CycleChainInstance inst =
        sensitivity::make_cycle_chain(k);
    util::Rng rng(seed ^ k);
    const core::AttackReport report =
        core::attack(scheme, inst.config, rng, options);
    obs::DensityPoint point;
    point.planted = k;
    point.min_rejections = report.min_rejections;
    point.density = static_cast<double>(report.min_rejections) /
                    static_cast<double>(inst.config.n());
    result.curve.points.push_back(point);
    result.curve.n = inst.config.n();  // largest instance of the family
  }
  const auto& pts = result.curve.points;
  result.curve.monotone = !pts.empty();
  for (std::size_t i = 1; i < pts.size(); ++i)
    if (pts[i].min_rejections < pts[i - 1].min_rejections)
      result.curve.monotone = false;
  result.curve.error_sensitive =
      result.curve.monotone && pts.size() >= 2 &&
      pts.back().min_rejections > pts.front().min_rejections;
  return result;
}

void emit(std::ostream& out, const std::vector<CurveResult>& results,
          std::span<const std::size_t> planted, std::uint64_t seed,
          bool smoke) {
  obs::JsonWriter json(out);
  json.begin_object();
  json.kv("bench", "rejection_density");
  json.kv("seed", seed);
  json.kv("smoke", smoke);
  json.key("planted");
  json.begin_array();
  for (const std::size_t k : planted) json.value(static_cast<std::uint64_t>(k));
  json.end_array();
  json.key("curves");
  json.begin_array();
  for (const CurveResult& r : results) {
    json.begin_object();
    json.kv("scheme", r.curve.scheme);
    json.kv("corruptor", r.corruptor);
    if (!r.skipped.empty()) {
      json.kv("skipped", r.skipped);
      json.end_object();
      continue;
    }
    json.kv("n", r.curve.n);
    json.kv("monotone", r.curve.monotone);
    json.kv("error_sensitive", r.curve.error_sensitive);
    json.key("points");
    json.begin_array();
    for (const obs::DensityPoint& p : r.curve.points) {
      json.begin_object();
      json.kv("planted", p.planted);
      json.kv("min_rejections", p.min_rejections);
      json.kv("density", p.density);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  PLS_ASSERT(json.finished());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pls;
  bench::CliArgs args(argc, argv);
  const bool smoke = args.take_flag("smoke");
  const std::string out_path = args.take_value("out").value_or("");
  const std::uint64_t seed = args.take_seed(0);
  if (!args.finish("bench_rejection_density [--smoke] [--out FILE] "
                   "[--seed S]"))
    return 2;

  bench::print_header(
      "X2: rejection density vs planted distance (whole catalog)",
      "adversary-minimized rejecting-node density as corruptions grow; "
      "monotone growth = observably error-sensitive");
  bench::echo_seed(seed);

  const std::size_t n = smoke ? 24 : 64;
  std::vector<std::size_t> planted =
      smoke ? std::vector<std::size_t>{1, 2, 4}
            : std::vector<std::size_t>{1, 2, 4, 8, 16};
  core::AttackOptions options;
  options.hill_climb_steps = smoke ? 60 : 200;
  if (smoke) {
    options.random_trials = 3;
    options.splice_sources = 2;
  }

  std::vector<CurveResult> results;
  for (const schemes::SchemeEntry& entry : schemes::standard_catalog()) {
    CurveResult result;
    result.curve.scheme = entry.label;
    if (entry.label == "bipartite") {
      result.corruptor = "-";
      result.skipped = "legal witnesses carry empty states; no state "
                       "corruption can leave this language";
      results.push_back(std::move(result));
      continue;
    }
    const sensitivity::Corruptor corrupt =
        corruptor_for(entry.label, result.corruptor);
    auto g = bench::graph_for(entry, n, seed ^ 29);
    util::Rng rng(seed ^ 31);
    const local::Configuration legal = entry.language->sample_legal(g, rng);
    try {
      result.curve = obs::measure_density_curve(*entry.scheme, legal, corrupt,
                                                planted, rng, options);
      result.curve.scheme = entry.label;  // catalog label, not scheme name
    } catch (const std::exception& e) {
      result.skipped = e.what();  // corruption kept landing inside the language
    }
    results.push_back(std::move(result));
  }
  results.push_back(cycle_chain_curve(planted, seed ^ 37, options));

  util::Table table({"scheme", "corruptor", "n", "curve (min rejections)",
                     "monotone", "error-sensitive"});
  std::size_t sensitive = 0;
  for (const CurveResult& r : results) {
    if (!r.skipped.empty()) {
      table.row(r.curve.scheme, r.corruptor, "-", "(skipped)", "-", "-");
      continue;
    }
    std::string curve_cells;
    for (const obs::DensityPoint& p : r.curve.points) {
      if (!curve_cells.empty()) curve_cells += " ";
      curve_cells += std::to_string(p.min_rejections);
    }
    table.row(r.curve.scheme, r.corruptor, r.curve.n, curve_cells,
              r.curve.monotone ? "yes" : "no",
              r.curve.error_sensitive ? "yes" : "no");
    if (r.curve.error_sensitive) ++sensitive;
  }
  table.print(std::cout);
  std::cout << "\nerror-sensitive curves: " << sensitive << "/"
            << results.size()
            << " (flat rows are the counterexample families: detection "
               "there cannot scale with the damage)\n";
  // The telemetry is only worth shipping if it separates at least one
  // scheme; the exact-distance anchor family guarantees one.
  PLS_ASSERT(sensitive >= 1);

  if (out_path.empty()) {
    emit(std::cout, results, planted, seed, smoke);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    emit(out, results, planted, seed, smoke);
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
