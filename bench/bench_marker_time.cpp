// Experiment T4 — marker (prover) cost.
//
// The marker is a centralized oracle in the paper; its cost still matters
// because silent self-stabilizing algorithms recompute certificates on
// recovery.  Expected shape: near-linear in n for the tree schemes,
// O(m log n) for MST (one Borůvka run plus per-phase BFS), O(n^2) encoding
// for the universal scheme.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "pls/universal.hpp"
#include "schemes/leader.hpp"

namespace {

using namespace pls;

// Base seed (--seed, default 0 = the published timings); set in main()
// before google-benchmark registration, XOR-salted into the historic
// per-benchmark seed literals.
std::uint64_t g_seed = 0;

const schemes::SchemeEntry& entry_at(std::size_t index) {
  static const auto catalog = schemes::standard_catalog();
  return catalog.at(index);
}

void BM_Mark(benchmark::State& state) {
  const schemes::SchemeEntry& entry = entry_at(
      static_cast<std::size_t>(state.range(0)));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  auto g = bench::graph_for(entry, n, g_seed ^ 31);
  util::Rng rng(g_seed ^ 37);
  const local::Configuration cfg = entry.language->sample_legal(g, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(entry.scheme->mark(cfg));
  }
  state.SetLabel(entry.label);
  state.counters["nodes"] = static_cast<double>(n);
}

void BM_MarkUniversal(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  static const schemes::LeaderLanguage language;
  static const core::UniversalScheme universal(language);
  auto g = bench::standard_graph(n, g_seed ^ 31);
  util::Rng rng(g_seed ^ 37);
  const local::Configuration cfg = language.sample_legal(g, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(universal.mark(cfg));
  }
  state.SetLabel("universal(leader)");
}

}  // namespace

int main(int argc, char** argv) {
  // --seed is ours; everything else (--benchmark_filter, ...) passes
  // through to google-benchmark untouched.
  pls::bench::CliArgs args(argc, argv);
  g_seed = args.take_seed(0);
  std::vector<std::string> leftover = args.unrecognized();
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (std::string& a : leftover) rest.push_back(a.data());
  int rest_argc = static_cast<int>(rest.size());
  pls::bench::echo_seed(g_seed);

  const auto catalog = schemes::standard_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i)
    benchmark::RegisterBenchmark("mark", &BM_Mark)
        ->ArgsProduct({{static_cast<long>(i)}, {64, 256, 1024}})
        ->ArgNames({"scheme", "n"});
  benchmark::RegisterBenchmark("mark_universal", &BM_MarkUniversal)
      ->Arg(32)
      ->Arg(64)
      ->Arg(128);
  benchmark::Initialize(&rest_argc, rest.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
