// Experiment F5 (EXTENSION) — error sensitivity: rejections vs distance.
//
// Follow-on work to the 2005 paper (see DESIGN.md): how many nodes reject as
// a function of how corrupted the configuration is.  Expected shape:
//   acyclic / leader / stl / mstl — rejections grow linearly with the
//     corruption count k (the adversary minimizes, yet cannot go below ~k);
//   stp path construction         — flat at 2 rejections while the distance
//     grows as n/2;
//   regular gluing construction   — flat at 4 rejections while the distance
//     grows with the component size.
#include "bench_common.hpp"

#include "pls/adversary.hpp"
#include "schemes/acyclic.hpp"
#include "schemes/leader.hpp"
#include "schemes/mst.hpp"
#include "schemes/spanning_tree.hpp"
#include "sensitivity/analysis.hpp"
#include "sensitivity/counterexamples.hpp"

int main(int argc, char** argv) {
  using namespace pls;
  const auto base = bench::take_seed_only(argc, argv, "bench_sensitivity");
  if (!base) return 2;
  bench::echo_seed(*base);
  core::AttackOptions options;
  options.hill_climb_steps = 200;

  // --- positive families ---------------------------------------------------
  bench::print_header(
      "F5a: error-sensitive schemes",
      "adversary-minimized rejections vs corruption count k (distance <= k)");
  util::Table table({"family", "n", "k", "min rejections", "rejections/k"});

  {
    const schemes::AcyclicLanguage language;
    const schemes::AcyclicScheme scheme(language);
    for (const std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
      const sensitivity::CycleChainInstance inst =
          sensitivity::make_cycle_chain(k);
      util::Rng rng(*base ^ k);
      const core::AttackReport report =
          core::attack(scheme, inst.config, rng, options);
      table.row("acyclic (k disjoint cycles, exact distance)", inst.config.n(),
                k, report.min_rejections,
                static_cast<double>(report.min_rejections) / k);
    }
  }
  {
    const schemes::LeaderLanguage language;
    const schemes::LeaderScheme scheme(language);
    auto g = bench::standard_graph(64, *base ^ 71);
    util::Rng rng(*base ^ 73);
    const auto legal = language.sample_legal(g, rng);
    for (const std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
      const sensitivity::SensitivityRow row = sensitivity::measure(
          scheme, legal, sensitivity::corrupt_leader, k, rng, options);
      table.row("leader (k extra leaders)", legal.n(), k, row.min_rejections,
                row.ratio);
    }
  }
  {
    const schemes::StlLanguage language;
    const schemes::StlScheme scheme(language);
    auto g = bench::standard_graph(64, *base ^ 79);
    util::Rng rng(*base ^ 83);
    const auto legal = language.sample_legal(g, rng);
    for (const std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
      const sensitivity::SensitivityRow row = sensitivity::measure(
          scheme, legal, sensitivity::corrupt_adjacency_list, k, rng, options);
      table.row("stl (k dropped list edges)", legal.n(), k, row.min_rejections,
                row.ratio);
    }
  }
  {
    const schemes::MstLanguage language;
    const schemes::MstScheme scheme(language);
    auto g = bench::weighted_graph(48, *base ^ 89);
    util::Rng rng(*base ^ 97);
    const auto legal = language.sample_legal(g, rng);
    for (const std::size_t k : {1u, 2u, 4u, 8u}) {
      const sensitivity::SensitivityRow row = sensitivity::measure(
          scheme, legal, sensitivity::corrupt_adjacency_list, k, rng, options);
      table.row("mstl (k dropped list edges)", legal.n(), k,
                row.min_rejections, row.ratio);
    }
  }
  table.print(std::cout);

  // --- negative constructions ----------------------------------------------
  bench::print_header(
      "F5b: non-error-sensitive encodings (counterexamples)",
      "rejections stay O(1) while the distance to the language grows");
  util::Table flat({"construction", "n", "distance lower bound",
                    "rejections", "illegal"});
  for (const std::size_t n : {16u, 32u, 64u, 128u, 256u}) {
    const sensitivity::CounterexampleResult r =
        sensitivity::stp_path_counterexample(n);
    flat.row("stp two-orientation path", r.n, r.distance_lower_bound,
             r.rejections, r.illegal ? "yes" : "no");
  }
  for (const std::size_t side : {8u, 16u, 32u, 64u}) {
    util::Rng rng(*base ^ side);
    const sensitivity::CounterexampleResult r =
        sensitivity::regular_gluing_counterexample(side, side, 3, rng);
    flat.row("regular 2-vs-3 gluing", r.n, r.distance_lower_bound,
             r.rejections, r.illegal ? "yes" : "no");
  }
  flat.print(std::cout);
  std::cout << "\nThe contrast between F5a (linear growth) and F5b (flat "
               "lines) is the error-sensitivity separation: the encoding of "
               "the output decides whether faults are locally visible in "
               "proportion to their size.\n";
  return 0;
}
