// Experiment T7 — the prover as a distributed algorithm.
//
// The paper's prover is an oracle abstraction; in practice the constructing
// algorithm writes the certificates itself.  This experiment measures the
// distributed markers for leader and stp: construction rounds (expected:
// eccentricity of the seed / tree depth, + a quiescence-confirmation round)
// and total message volume, with the verifier accepting the result.
#include "bench_common.hpp"

#include "graph/algorithms.hpp"
#include "pls/engine.hpp"
#include "schemes/distributed_marker.hpp"
#include "schemes/leader.hpp"
#include "schemes/spanning_tree.hpp"

int main(int argc, char** argv) {
  using namespace pls;
  const auto seed = bench::take_seed_only(argc, argv, "bench_dist_marker");
  if (!seed) return 2;
  bench::print_header(
      "T7: distributed certificate construction",
      "flooding-based markers: rounds vs eccentricity/depth, message bits, "
      "and acceptance by the 1-round verifier");
  bench::echo_seed(*seed);

  const schemes::LeaderLanguage leader_language;
  const schemes::LeaderScheme leader_scheme(leader_language);
  const schemes::StpLanguage stp_language;
  const schemes::StpScheme stp_scheme(stp_language);

  util::Table table({"scheme", "topology", "n", "reference depth", "rounds",
                     "message kbits", "verified"});

  struct Topo {
    const char* label;
    graph::Graph g;
  };
  std::vector<Topo> topologies;
  topologies.push_back({"path", graph::path(128)});
  topologies.push_back({"grid", graph::grid(12, 12)});
  {
    util::Rng rng(*seed ^ 5);
    topologies.push_back({"random", graph::random_connected(144, 96, rng)});
  }

  for (const Topo& topo : topologies) {
    auto g = bench::share(topo.g);

    // leader: seed at node 0; reference = eccentricity of node 0.
    {
      const auto cfg = leader_language.make_with_leader(g, 0);
      const schemes::DistributedMarking marking =
          schemes::distributed_leader_marking(cfg);
      const graph::BfsResult r = graph::bfs(*g, 0);
      std::size_t ecc = 0;
      for (const std::uint32_t d : r.dist) ecc = std::max<std::size_t>(ecc, d);
      const bool ok =
          core::run_verifier(leader_scheme, cfg, marking.labeling).all_accept();
      table.row("leader", topo.label, g->n(), ecc, marking.rounds,
                static_cast<double>(marking.message_bits) / 1000.0,
                ok ? "yes" : "NO");
    }

    // stp: BFS tree rooted at node 0; reference = tree depth.
    {
      const auto cfg = stp_language.make_tree(g, 0);
      const schemes::DistributedMarking marking =
          schemes::distributed_stp_marking(cfg);
      const graph::BfsResult r = graph::bfs(*g, 0);
      std::size_t depth = 0;
      for (const std::uint32_t d : r.dist)
        depth = std::max<std::size_t>(depth, d);
      const bool ok =
          core::run_verifier(stp_scheme, cfg, marking.labeling).all_accept();
      table.row("stp", topo.label, g->n(), depth, marking.rounds,
                static_cast<double>(marking.message_bits) / 1000.0,
                ok ? "yes" : "NO");
    }
  }
  table.print(std::cout);
  std::cout << "\nCertification is free when it rides on the constructing "
               "algorithm: the flooding that builds the tree already carries "
               "everything the certificates need.\n";
  return 0;
}
