// Experiment T6 — visibility-model ablation.
//
// The 2005 model's verification round carries certificates only; later
// formalizations expose neighbor states.  The strict adapter converts any
// extended scheme, paying +(id + state + framing) bits per certificate.
// Expected shape: overhead ~ state bits + O(log n), independent of the
// inner scheme's own size.
#include "bench_common.hpp"

#include "pls/strict_adapter.hpp"

int main(int argc, char** argv) {
  using namespace pls;
  const auto seed = bench::take_seed_only(argc, argv, "bench_strict_ablation");
  if (!seed) return 2;
  bench::print_header(
      "T6: strict (certificates-only) model ablation",
      "certificate bits in the extended model vs after the strict adapter");
  bench::echo_seed(*seed);

  util::Table table({"scheme", "n", "state bits", "extended bits",
                     "strict bits", "overhead"});
  for (const schemes::SchemeEntry& entry : schemes::standard_catalog()) {
    if (entry.scheme->visibility() != local::Visibility::kExtended) continue;
    const core::StrictAdapter strict(*entry.scheme);
    for (const std::size_t n : {64u, 256u, 1024u}) {
      auto g = bench::graph_for(entry, n, *seed ^ 61);
      util::Rng rng(*seed ^ 67);
      const local::Configuration cfg = entry.language->sample_legal(g, rng);
      const std::size_t extended = entry.scheme->mark(cfg).max_bits();
      const std::size_t adapted = strict.mark(cfg).max_bits();
      table.row(entry.label, n, cfg.max_state_bits(), extended, adapted,
                adapted - extended);
    }
  }
  table.print(std::cout);
  std::cout << "\nagree / bipartite / universal are natively strict and need "
               "no adapter; their rows are omitted.\n";
  return 0;
}
