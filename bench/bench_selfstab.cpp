// Experiment F4 — self-stabilization with proof-labeling detection.
//
// The application the paper motivates: the spanning-tree protocol embeds its
// certificates in its states; after k transient faults, the 1-round local
// verifier detects, and the protocol recovers to the legitimate silent
// configuration.  Expected shape: detection is immediate (round 0), the
// number of detecting nodes grows with k, and recovery stays O(n) rounds.
#include "bench_common.hpp"

#include "obs/density.hpp"
#include "selfstab/harness.hpp"

int main(int argc, char** argv) {
  using namespace pls;
  const auto base = bench::take_seed_only(argc, argv, "bench_selfstab");
  if (!base) return 2;
  bench::print_header(
      "F4: self-stabilizing spanning tree with PLS detection",
      "after k faults: immediate detectors, stabilization rounds, silence "
      "(averaged over 10 seeds)");
  bench::echo_seed(*base);

  struct Topology {
    const char* label;
    graph::Graph graph;
  };
  std::vector<Topology> topologies;
  topologies.push_back({"grid 8x8", graph::grid(8, 8)});
  topologies.push_back({"path 64", graph::path(64)});
  {
    util::Rng rng(*base ^ 51);
    topologies.push_back({"random 64", graph::random_connected(64, 32, rng)});
  }

  util::Table table({"topology", "k faults", "avg detectors", "avg rounds",
                     "recovered", "silent"});
  for (const Topology& topo : topologies) {
    for (const std::size_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
      double detectors = 0, rounds = 0;
      std::size_t recovered = 0, silent = 0;
      const std::size_t trials = 10;
      for (std::uint64_t seed = 1; seed <= trials; ++seed) {
        util::Rng rng(*base ^ (seed * 97));
        const selfstab::FaultExperiment r =
            selfstab::run_fault_experiment(topo.graph, k, rng);
        detectors += static_cast<double>(r.detectors_immediate);
        rounds += static_cast<double>(r.stabilization_rounds);
        recovered += r.legitimate_after ? 1 : 0;
        silent += r.silent_after ? 1 : 0;
      }
      table.row(topo.label, k, detectors / trials, rounds / trials,
                std::to_string(recovered) + "/" + std::to_string(trials),
                std::to_string(silent) + "/" + std::to_string(trials));
    }
  }
  table.print(std::cout);
  std::cout << "\nDetection latency is one round by construction (the local "
               "verifier); 'avg detectors' growing with k is the trend the "
               "error-sensitivity extension quantifies.\n";

  // --- density-proportional recovery ---------------------------------------
  // The payoff of rejection-density telemetry: below the threshold the
  // harness restarts only the detectors' closed neighborhoods, above it the
  // whole network.  'reset nodes' is the work the policy spends — it should
  // track the damage, not n, until the density crosses the threshold.
  bench::print_header(
      "F4b: density-proportional recovery (threshold 0.25)",
      "round-0 rejection density chooses local neighborhood restart vs "
      "global reset (grid 8x8, averaged over 10 seeds)");
  util::Table recovery({"k faults", "avg density", "local/global",
                        "avg reset nodes", "avg rounds", "recovered"});
  const graph::Graph& grid = topologies.front().graph;
  obs::MetricsRegistry density_metrics;
  for (const std::size_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    double density = 0, reset_nodes = 0, rounds = 0;
    std::size_t local = 0, recovered = 0;
    const std::size_t trials = 10;
    for (std::uint64_t seed = 1; seed <= trials; ++seed) {
      util::Rng rng(*base ^ (seed * 97));
      selfstab::FaultOptions opts;
      opts.local_recovery_density = 0.25;
      opts.metrics = &density_metrics;
      opts.density_regions = 4;
      const selfstab::FaultExperiment r =
          selfstab::run_fault_experiment(grid, k, rng, opts);
      density += r.rejection_density;
      reset_nodes += static_cast<double>(r.reset_nodes);
      rounds += static_cast<double>(r.stabilization_rounds);
      local += r.local_recovery ? 1 : 0;
      recovered += r.legitimate_after ? 1 : 0;
    }
    recovery.row(k, density / trials,
                 std::to_string(local) + "/" + std::to_string(trials - local),
                 reset_nodes / trials, rounds / trials,
                 std::to_string(recovered) + "/" + std::to_string(trials));
  }
  recovery.print(std::cout);
  const obs::MetricsSnapshot snap = density_metrics.snapshot();
  const obs::HistogramSnapshot& frac = snap.histograms.at("density.fraction_ppm");
  std::cout << "\ndensity.fraction_ppm over all trials: p50 = "
            << frac.quantile(0.50) << ", p99 = " << frac.quantile(0.99)
            << " (the gauge the recovery policy reads)\n";
  return 0;
}
