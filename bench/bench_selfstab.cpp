// Experiment F4 — self-stabilization with proof-labeling detection.
//
// The application the paper motivates: the spanning-tree protocol embeds its
// certificates in its states; after k transient faults, the 1-round local
// verifier detects, and the protocol recovers to the legitimate silent
// configuration.  Expected shape: detection is immediate (round 0), the
// number of detecting nodes grows with k, and recovery stays O(n) rounds.
#include "bench_common.hpp"

#include "selfstab/harness.hpp"

int main() {
  using namespace pls;
  bench::print_header(
      "F4: self-stabilizing spanning tree with PLS detection",
      "after k faults: immediate detectors, stabilization rounds, silence "
      "(averaged over 10 seeds)");

  struct Topology {
    const char* label;
    graph::Graph graph;
  };
  std::vector<Topology> topologies;
  topologies.push_back({"grid 8x8", graph::grid(8, 8)});
  topologies.push_back({"path 64", graph::path(64)});
  {
    util::Rng rng(51);
    topologies.push_back({"random 64", graph::random_connected(64, 32, rng)});
  }

  util::Table table({"topology", "k faults", "avg detectors", "avg rounds",
                     "recovered", "silent"});
  for (const Topology& topo : topologies) {
    for (const std::size_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
      double detectors = 0, rounds = 0;
      std::size_t recovered = 0, silent = 0;
      const std::size_t trials = 10;
      for (std::uint64_t seed = 1; seed <= trials; ++seed) {
        util::Rng rng(seed * 97);
        const selfstab::FaultExperiment r =
            selfstab::run_fault_experiment(topo.graph, k, rng);
        detectors += static_cast<double>(r.detectors_immediate);
        rounds += static_cast<double>(r.stabilization_rounds);
        recovered += r.legitimate_after ? 1 : 0;
        silent += r.silent_after ? 1 : 0;
      }
      table.row(topo.label, k, detectors / trials, rounds / trials,
                std::to_string(recovered) + "/" + std::to_string(trials),
                std::to_string(silent) + "/" + std::to_string(trials));
    }
  }
  table.print(std::cout);
  std::cout << "\nDetection latency is one round by construction (the local "
               "verifier); 'avg detectors' growing with k is the trend the "
               "error-sensitivity extension quantifies.\n";
  return 0;
}
