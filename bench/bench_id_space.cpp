// Experiment T8 — id-space ablation.
//
// The Θ(log n) proof sizes assume ids polynomial in n: certificates embed
// ids, so the proof size is really Θ(log id-space).  This experiment fixes
// n and inflates the id space from 4n to n^2 to 2^48, measuring how the
// leader / stp / stl / mstl certificates grow.  Expected shape: certificate
// bits track the varint width of the largest id; schemes whose certificates
// hold more id fields (mstl: 3 per phase) grow proportionally faster.
#include "bench_common.hpp"

#include "schemes/leader.hpp"
#include "schemes/mst.hpp"
#include "schemes/spanning_tree.hpp"

int main(int argc, char** argv) {
  using namespace pls;
  const auto seed = bench::take_seed_only(argc, argv, "bench_id_space");
  if (!seed) return 2;
  bench::print_header(
      "T8: id-space ablation (n = 128 fixed)",
      "certificate bits vs the id space the identifiers are drawn from");
  bench::echo_seed(*seed);

  const schemes::LeaderLanguage leader_language;
  const schemes::LeaderScheme leader(leader_language);
  const schemes::StpLanguage stp_language;
  const schemes::StpScheme stp(stp_language);
  const schemes::StlLanguage stl_language;
  const schemes::StlScheme stl(stl_language);
  const schemes::MstLanguage mst_language;
  const schemes::MstScheme mst(mst_language);

  const std::size_t n = 128;
  struct Space {
    const char* label;
    graph::RawId bound;
  };
  const Space spaces[] = {{"4n", 4 * n},
                          {"n^2", static_cast<graph::RawId>(n) * n},
                          {"2^32", graph::RawId{1} << 32},
                          {"2^48", graph::RawId{1} << 48}};

  util::Table table({"id space", "max id bits", "leader", "stp", "stl",
                     "mstl"});
  for (const Space& space : spaces) {
    util::Rng rng(*seed ^ 91);
    const graph::Graph base = graph::random_connected(n, n / 2, rng);
    auto g = bench::share(graph::relabel_random(base, rng, space.bound));
    auto wg = bench::share(graph::reweight_random(
        graph::relabel_random(base, rng, space.bound), rng));

    util::Rng sample_rng(*seed ^ 93);
    const std::size_t leader_bits =
        leader.mark(leader_language.sample_legal(g, sample_rng)).max_bits();
    const std::size_t stp_bits =
        stp.mark(stp_language.sample_legal(g, sample_rng)).max_bits();
    const std::size_t stl_bits =
        stl.mark(stl_language.sample_legal(g, sample_rng)).max_bits();
    const std::size_t mst_bits =
        mst.mark(mst_language.sample_legal(wg, sample_rng)).max_bits();

    table.row(space.label, util::bit_width_for(g->max_id()), leader_bits,
              stp_bits, stl_bits, mst_bits);
  }
  table.print(std::cout);
  std::cout << "\nProof size is Theta(log of the id space): the standard "
               "\"ids polynomial in n\" assumption is what makes the "
               "headline bounds read Theta(log n).\n";
  return 0;
}
