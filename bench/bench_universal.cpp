// Experiment T5 — the universal scheme's O(n^2 + n s) certificate size.
//
// Measured certificate bits against the closed-form predictor
// n^2 + n(s + 160) + 128; the measured/predicted ratio should stay bounded
// and roughly constant as n grows (the n^2 adjacency matrix dominates).
#include "bench_common.hpp"

#include "pls/engine.hpp"
#include "pls/universal.hpp"
#include "schemes/agree.hpp"
#include "schemes/leader.hpp"
#include "schemes/spanning_tree.hpp"

int main(int argc, char** argv) {
  using namespace pls;
  const auto seed = bench::take_seed_only(argc, argv, "bench_universal");
  if (!seed) return 2;
  bench::print_header(
      "T5: universal scheme certificate size",
      "measured bits vs the O(n^2 + n s) predictor, several inner languages");
  bench::echo_seed(*seed);

  const schemes::LeaderLanguage leader;
  const schemes::AgreeLanguage agree(32);
  const schemes::StlLanguage stl;
  struct Row {
    const core::Language* language;
    const char* label;
  };
  const Row rows[] = {{&leader, "leader"}, {&agree, "agree(32)"},
                      {&stl, "stl"}};

  util::Table table({"inner language", "n", "state bits", "measured bits",
                     "n^2 term", "measured/n^2"});
  for (const Row& r : rows) {
    const core::UniversalScheme universal(*r.language);
    for (const std::size_t n : {16u, 32u, 64u, 128u, 256u}) {
      auto g = bench::standard_graph(n, *seed ^ 41);
      util::Rng rng(*seed ^ 43);
      const local::Configuration cfg = r.language->sample_legal(g, rng);
      const std::size_t bits = universal.mark(cfg).max_bits();
      table.row(r.label, n, cfg.max_state_bits(), bits, n * n,
                static_cast<double>(bits) / static_cast<double>(n * n));
    }
  }
  table.print(std::cout);

  // Sanity: the universal verifier still accepts at a moderate size (its
  // verification is O(n^2) per node, so this is the expensive direction).
  {
    auto g = bench::standard_graph(48, *seed ^ 41);
    util::Rng rng(*seed ^ 47);
    const core::UniversalScheme universal(leader);
    const local::Configuration cfg = leader.sample_legal(g, rng);
    const bool ok = core::completeness_holds(universal, cfg);
    std::cout << "\nuniversal(leader) completeness at n=48: "
              << (ok ? "all accept" : "REJECTED") << "\n";
  }
  return 0;
}
