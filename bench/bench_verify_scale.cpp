// Experiment R2 — staged verification at scale.
//
// Three scenarios over the spanning-tree spread:
//
// 1. Single labeling (the PR 2 experiment): the pre-session reference engine
//    (one ball at a time, every ball certificate re-parsed at every center)
//    against VerificationSession (staged pipeline: geometry atlas +
//    parse-once cache + optional thread pool) at n = 4096, t in
//    {1, 2, 4, 8}.  Emits the time–size tradeoff curve as JSON.
//
// 2. Multi-labeling batch (the adversary's workload): L labelings derived
//    from the honest marking by hill-climb-style point mutations, all
//    verified against ONE (scheme, cfg, t).  BatchVerifier + a warm
//    GeometryAtlas (geometry built once, served to every labeling, parse of
//    labeling i+1 overlapped with the sweep of labeling i) against the
//    rebuild-every-run baseline (byte_budget = 0 atlas: same code path, no
//    geometry retained — the pre-atlas behavior).  Reports throughput
//    (labelings/sec), the atlas hit rate, and resident bytes.
//
// 3. Incremental delta stream (the hill-climb's inner loop): a single-cert
//    mutation stream — labeling i is labeling i-1 with exactly one node's
//    certificate replaced — verified (a) by the full pipelined batch over a
//    warm atlas (the strongest full-re-verify path) and (b) through
//    BatchVerifier::run_delta with the mutated node declared per step, so
//    only the touched certificate is re-parsed and only the dirty centers
//    (the mutated node's radius-t ball, by ball symmetry) are re-swept.
//    Always n = 4096 on a 64x64 grid — incremental verification is a
//    locality play, so the instance is the bounded-growth regime where
//    radius-8 balls are 3.5% of the graph, not the expander-like random
//    instance whose balls cover 2/3 of it (the emitted dirty_fraction
//    quantifies that boundary); --smoke only shortens the stream.  Reports
//    both throughputs, the delta work counters, and per-phase atlas hit
//    rates (snapshot-diffed AtlasStats, AtlasStats::since).
//
// Verdict identity is asserted everywhere: scenario 1 across
// baseline/sequential/parallel sessions per row; scenario 2 across the
// rebuild loop and batch runs at threads {1, 2, hardware}, and against
// run_verifier_t_baseline for the first few labelings (all of them under
// --smoke — the naive engine is too slow to oracle 100 full-size labelings);
// scenario 3 delta vs. full batch for every labeling of the stream, delta at
// threads {1, 2, hardware} over a prefix, and the stream head against the
// naive engine (full runs only — it is a 4096-node t = 8 instance).
//
// Per-stage latency (parse/link, sweep window, delta stages) is recorded
// into an obs::MetricsRegistry by the verifiers themselves
// (BatchOptions::metrics); the emitted JSON carries the full snapshot —
// count/mean/p50/p90/p95/p99 per stage — and stderr quotes the headline
// p50/p99.  --trace-out additionally records the timed batch contender with
// obs::TraceRecorder and writes a chrome://tracing document showing the
// parse(i+1)-inside-sweep-window(i) pipelining overlap and per-slot sweep
// skew.  --max-disabled-span-ns gates the observability tax: the measured
// per-span cost of an instrumented-but-disabled trace point (one relaxed
// atomic load) must stay under the bound.
//
// Usage: bench_verify_scale [--smoke] [--out FILE] [--batch-out FILE]
//                           [--incremental-out FILE] [--trace-out FILE]
//                           [--seed S] [--threads T] [--t T] [--labelings L]
//                           [--require-speedup X] [--require-batch-speedup X]
//                           [--require-incremental-speedup X]
//                           [--max-disabled-span-ns X]
//   --smoke                   n = 1024 for scenarios 1-2, fewer labelings
//                             (CI-friendly; scenario 3 stays at n = 4096)
//   --out FILE                write the tradeoff JSON there instead of stdout
//   --batch-out FILE          additionally write the batch-scenario JSON
//   --incremental-out FILE    additionally write the delta-scenario JSON
//   --trace-out FILE          record the timed batch run; write chrome-trace
//                             JSON there (load via chrome://tracing)
//   --seed S                  base RNG seed (echoed into every JSON)
//   --threads T               thread count for the timed runs (default: hw)
//   --t T                     batch/incremental radius (default 8)
//   --labelings L             batch + stream size (default 100; 16 under
//                             --smoke)
//   --require-speedup X       fail if t = 8 sequential session speedup < X
//   --require-batch-speedup X fail if batch+atlas throughput gain < X
//   --require-incremental-speedup X fail if delta-vs-full gain < X
//   --max-disabled-span-ns X  fail if a disabled trace span costs > X ns
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "radius/batch.hpp"
#include "radius/session.hpp"
#include "radius/spread.hpp"
#include "schemes/spanning_tree.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace pls;

constexpr graph::RawId kIdSpace = graph::RawId{1} << 56;

// Default base seed; --seed overrides.  The stream RNGs are salted so the
// default reproduces the historical per-scenario seeds (0xBA115CA1E for the
// instance, 0xA71A5 for the batch stream) exactly.
constexpr std::uint64_t kDefaultSeed = 0xBA11'5CA1Eull;
constexpr std::uint64_t kBatchSalt = kDefaultSeed ^ 0xA7'1A5ull;
constexpr std::uint64_t kIncrementalSalt = 0xDE17A'BA11ull;

struct Row {
  std::string scheme;
  std::size_t n = 0;
  unsigned t = 0;
  std::size_t max_cert_bits = 0;
  double avg_cert_bits = 0.0;
  double baseline_ms = 0.0;     ///< pre-session engine (re-parse per ball)
  double session_seq_ms = 0.0;  ///< session, threads = 1
  double session_par_ms = 0.0;  ///< session, threads = T
  unsigned threads = 1;
  bool verdicts_identical = false;
};

/// The multi-labeling scenario's result sheet.
struct BatchResult {
  std::size_t n = 0;
  unsigned t = 0;
  std::size_t labelings = 0;
  unsigned threads = 1;
  double rebuild_ms = 0.0;  ///< per-run geometry rebuild (budget-0 atlas)
  double batch_ms = 0.0;    ///< BatchVerifier + warm atlas
  double rebuild_per_sec = 0.0;
  double batch_per_sec = 0.0;
  double speedup = 0.0;
  radius::AtlasStats atlas;
  std::size_t baseline_checked = 0;  ///< labelings oracled vs the naive engine
  bool verdicts_identical = false;
};

double time_ms(const std::function<core::Verdict()>& run,
               core::Verdict& out) {
  const auto start = std::chrono::steady_clock::now();
  out = run();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

bool same_verdict(const core::Verdict& a, const core::Verdict& b) {
  return a.accept() == b.accept();
}

Row measure(const core::Scheme& scheme, const local::Configuration& cfg,
            unsigned t, unsigned threads) {
  Row row;
  row.scheme = std::string(scheme.name());
  row.n = cfg.n();
  row.t = t;
  row.threads = threads;

  const core::Labeling lab = scheme.mark(cfg);
  row.max_cert_bits = lab.max_bits();
  row.avg_cert_bits =
      static_cast<double>(lab.total_bits()) / static_cast<double>(cfg.n());

  core::Verdict baseline, seq, par;
  row.baseline_ms = time_ms(
      [&] { return radius::run_verifier_t_baseline(scheme, cfg, lab, t); },
      baseline);
  row.session_seq_ms = time_ms(
      [&] {
        radius::SessionOptions options;
        options.threads = 1;
        radius::VerificationSession session(scheme, cfg, t, options);
        return session.run(lab);
      },
      seq);
  row.session_par_ms = time_ms(
      [&] {
        radius::SessionOptions options;
        options.threads = threads;
        radius::VerificationSession session(scheme, cfg, t, options);
        return session.run(lab);
      },
      par);

  // Micro-assert for the staged pipeline: the session path serves geometry
  // through the atlas and interns chunk payloads into dense ids after the
  // parallel parse (link_parses), while the baseline engine rebuilds balls
  // and re-parses raw BitStrings everywhere — any divergence between the
  // two shows up right here.
  row.verdicts_identical =
      same_verdict(baseline, seq) && same_verdict(baseline, par);
  PLS_ASSERT(row.verdicts_identical);
  PLS_ASSERT(baseline.all_accept());  // honest marking on a legal instance
  return row;
}

/// Hill-climb-style candidate stream: each labeling is the previous one with
/// one node's certificate replaced (by a donor node's certificate or random
/// bits) — exactly the adversary's usage pattern.
std::vector<core::Labeling> candidate_labelings(const core::Scheme& scheme,
                                                const local::Configuration& cfg,
                                                std::size_t count,
                                                util::Rng& rng) {
  std::vector<core::Labeling> labs;
  labs.reserve(count);
  labs.push_back(scheme.mark(cfg));
  const std::size_t n = cfg.n();
  while (labs.size() < count) {
    core::Labeling next = labs.back();
    const std::size_t v = rng.below(n);
    if (rng.below(2) == 0) {
      next.certs[v] = next.certs[rng.below(n)];
    } else {
      next.certs[v] = local::random_state(rng.below(64), rng);
    }
    labs.push_back(std::move(next));
  }
  return labs;
}

BatchResult measure_batch(const core::Scheme& scheme,
                          const local::Configuration& cfg, unsigned t,
                          unsigned threads,
                          std::span<const core::Labeling> labs,
                          std::size_t baseline_checked,
                          obs::MetricsRegistry& registry, bool trace) {
  BatchResult r;
  r.n = cfg.n();
  r.t = t;
  r.labelings = labs.size();
  r.threads = threads;

  // Rebuild-every-run baseline: the identical staged code path with a
  // byte_budget = 0 atlas (nothing retained between runs) and no batch
  // pipelining — what every pre-atlas caller paid.
  std::vector<core::Verdict> rebuild_verdicts;
  rebuild_verdicts.reserve(labs.size());
  {
    radius::BatchOptions options;
    options.threads = threads;
    options.atlas = std::make_shared<radius::GeometryAtlas>(
        radius::AtlasOptions{0, 64});
    radius::BatchVerifier rebuild(scheme, cfg, t, options);
    const auto start = std::chrono::steady_clock::now();
    for (const core::Labeling& lab : labs)
      rebuild_verdicts.push_back(rebuild.run_one(lab));
    const auto stop = std::chrono::steady_clock::now();
    r.rebuild_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
  }

  // BatchVerifier + warm atlas, the timed contender — the run the stage
  // histograms (and, under --trace-out, the chrome trace) describe.
  std::vector<core::Verdict> batch_verdicts;
  {
    radius::BatchOptions options;
    options.threads = threads;
    options.metrics = &registry;
    radius::BatchVerifier batch(scheme, cfg, t, options);
    if (trace) obs::TraceRecorder::enable();
    const auto start = std::chrono::steady_clock::now();
    batch_verdicts = batch.run(labs);
    const auto stop = std::chrono::steady_clock::now();
    if (trace) obs::TraceRecorder::disable();
    r.batch_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    r.atlas = batch.atlas().stats();
  }

  r.rebuild_per_sec =
      static_cast<double>(labs.size()) / (r.rebuild_ms / 1000.0);
  r.batch_per_sec = static_cast<double>(labs.size()) / (r.batch_ms / 1000.0);
  r.speedup = r.rebuild_ms / r.batch_ms;

  // Verdict identity: batch == rebuild for every labeling, batch at
  // threads {1, 2, hardware} all equal (untimed), and the first
  // `baseline_checked` labelings against the naive reference engine.
  bool identical = true;
  for (std::size_t i = 0; i < labs.size(); ++i)
    identical = identical &&
                same_verdict(rebuild_verdicts[i], batch_verdicts[i]);
  for (const unsigned check_threads :
       {1u, 2u, util::ThreadPool::hardware_threads()}) {
    radius::BatchOptions options;
    options.threads = check_threads;
    radius::BatchVerifier batch(scheme, cfg, t, options);
    const std::vector<core::Verdict> verdicts = batch.run(labs);
    for (std::size_t i = 0; i < labs.size(); ++i)
      identical = identical && same_verdict(verdicts[i], batch_verdicts[i]);
  }
  r.baseline_checked = std::min(baseline_checked, labs.size());
  for (std::size_t i = 0; i < r.baseline_checked; ++i)
    identical = identical &&
                same_verdict(radius::run_verifier_t_baseline(scheme, cfg,
                                                             labs[i], t),
                             batch_verdicts[i]);
  r.verdicts_identical = identical;
  PLS_ASSERT(identical);
  return r;
}

/// Scenario 3's result sheet.
struct IncrementalResult {
  std::size_t n = 0;
  unsigned t = 0;
  std::size_t labelings = 0;
  unsigned threads = 1;
  double full_ms = 0.0;    ///< pipelined batch, warm atlas (full re-verify)
  double delta_ms = 0.0;   ///< one seeding run + run_delta per mutation
  double full_per_sec = 0.0;
  double delta_per_sec = 0.0;
  double speedup = 0.0;
  radius::DeltaStats delta_stats;
  double dirty_fraction = 0.0;       ///< avg re-swept centers / n per delta
  double full_phase_hit_rate = 0.0;  ///< atlas, full phase only
  double delta_phase_hit_rate = 0.0; ///< atlas, delta phase only
  std::size_t baseline_checked = 0;
  bool verdicts_identical = false;
};

/// Single-certificate mutation stream with the mutated node recorded per
/// step — the delta path's declared input.  labs[0] is the honest marking;
/// labs[i] replaces one certificate of labs[i-1] (donor copy or random
/// bits), touched[i-1] names the node.
struct MutationStream {
  std::vector<core::Labeling> labs;
  std::vector<graph::NodeIndex> touched;
};

MutationStream mutation_stream(const core::Scheme& scheme,
                               const local::Configuration& cfg,
                               std::size_t count, util::Rng& rng) {
  MutationStream stream;
  stream.labs.reserve(count);
  stream.labs.push_back(scheme.mark(cfg));
  const std::size_t n = cfg.n();
  while (stream.labs.size() < count) {
    core::Labeling next = stream.labs.back();
    const auto v = static_cast<graph::NodeIndex>(rng.below(n));
    if (rng.below(2) == 0) {
      next.certs[v] = next.certs[rng.below(n)];
    } else {
      next.certs[v] = local::random_state(rng.below(64), rng);
    }
    stream.labs.push_back(std::move(next));
    stream.touched.push_back(v);
  }
  return stream;
}

/// Replays the stream through run_delta on `verifier` (one full seeding run
/// for labs[0], then one delta per mutation).
std::vector<core::Verdict> replay_deltas(radius::BatchVerifier& verifier,
                                         const MutationStream& stream) {
  std::vector<core::Verdict> verdicts;
  verdicts.reserve(stream.labs.size());
  verdicts.push_back(verifier.run_one(stream.labs.front()));
  radius::LabelingDelta delta;
  delta.touched.resize(1);
  for (std::size_t i = 1; i < stream.labs.size(); ++i) {
    delta.touched[0] = stream.touched[i - 1];
    verdicts.push_back(verifier.run_delta(stream.labs[i], delta));
  }
  return verdicts;
}

IncrementalResult measure_incremental(const core::Scheme& scheme,
                                      const local::Configuration& cfg,
                                      unsigned t, unsigned threads,
                                      const MutationStream& stream,
                                      std::size_t baseline_checked,
                                      obs::MetricsRegistry& registry) {
  IncrementalResult r;
  r.n = cfg.n();
  r.t = t;
  r.labelings = stream.labs.size();
  r.threads = threads;

  // Both contenders share one warm atlas: geometry is scenario 2's subject,
  // not this one's, so it is built once up front and both phases run
  // steady-state.  Snapshot diffs (AtlasStats::since) bracket the phases for
  // per-phase hit rates — the retired reset_stats could misattribute
  // concurrent traffic to the wrong phase; a diff of two snapshots cannot.
  radius::BatchOptions options;
  options.threads = threads;
  options.atlas = std::make_shared<radius::GeometryAtlas>();
  options.metrics = &registry;
  radius::BatchVerifier full(scheme, cfg, t, options);
  radius::BatchVerifier delta(scheme, cfg, t, options);
  full.run_one(stream.labs.front());  // warm the shared geometry
  const radius::AtlasStats warm = options.atlas->stats();

  std::vector<core::Verdict> full_verdicts;
  {
    const auto start = std::chrono::steady_clock::now();
    full_verdicts = full.run(stream.labs);
    const auto stop = std::chrono::steady_clock::now();
    r.full_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
  }
  const radius::AtlasStats after_full = options.atlas->stats();
  r.full_phase_hit_rate = after_full.since(warm).hit_rate();

  std::vector<core::Verdict> delta_verdicts;
  {
    const auto start = std::chrono::steady_clock::now();
    delta_verdicts = replay_deltas(delta, stream);
    const auto stop = std::chrono::steady_clock::now();
    r.delta_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
  }
  r.delta_phase_hit_rate = options.atlas->stats().since(after_full).hit_rate();
  r.delta_stats = delta.delta_stats();

  const auto count = static_cast<double>(stream.labs.size());
  r.full_per_sec = count / (r.full_ms / 1000.0);
  r.delta_per_sec = count / (r.delta_ms / 1000.0);
  r.speedup = r.full_ms / r.delta_ms;
  r.dirty_fraction =
      r.delta_stats.delta_runs == 0
          ? 0.0
          : static_cast<double>(r.delta_stats.centers_reswept) /
                (static_cast<double>(r.delta_stats.delta_runs) *
                 static_cast<double>(cfg.n()));

  // Verdict identity: delta == full batch for EVERY labeling of the stream,
  // delta at threads {1, 2, hardware} over a prefix (untimed), and the
  // stream head against the naive reference engine.
  bool identical = full_verdicts.size() == delta_verdicts.size();
  for (std::size_t i = 0; identical && i < full_verdicts.size(); ++i)
    identical = same_verdict(full_verdicts[i], delta_verdicts[i]);
  const std::size_t prefix = std::min<std::size_t>(10, stream.labs.size());
  MutationStream head;
  head.labs.assign(stream.labs.begin(),
                   stream.labs.begin() + static_cast<std::ptrdiff_t>(prefix));
  head.touched.assign(
      stream.touched.begin(),
      stream.touched.begin() + static_cast<std::ptrdiff_t>(prefix - 1));
  for (const unsigned check_threads :
       {1u, 2u, util::ThreadPool::hardware_threads()}) {
    radius::BatchOptions check_options;
    check_options.threads = check_threads;
    check_options.atlas = options.atlas;
    radius::BatchVerifier check(scheme, cfg, t, check_options);
    const std::vector<core::Verdict> got = replay_deltas(check, head);
    for (std::size_t i = 0; identical && i < got.size(); ++i)
      identical = same_verdict(got[i], full_verdicts[i]);
  }
  r.baseline_checked = std::min(baseline_checked, stream.labs.size());
  for (std::size_t i = 0; identical && i < r.baseline_checked; ++i)
    identical = same_verdict(
        radius::run_verifier_t_baseline(scheme, cfg, stream.labs[i], t),
        full_verdicts[i]);
  r.verdicts_identical = identical;
  PLS_ASSERT(identical);
  return r;
}

double t8_speedup_sequential(const std::vector<Row>& rows) {
  for (const Row& r : rows)
    if (r.t == 8) return r.baseline_ms / r.session_seq_ms;
  return 0.0;
}

/// Writes the incremental-scenario object into an in-progress document (the
/// top-level artifact nests it; --incremental-out wraps it as its own root).
void emit_incremental(obs::JsonWriter& json, const IncrementalResult& r,
                      const obs::MetricsSnapshot& metrics,
                      std::uint64_t seed) {
  json.begin_object();
  json.kv("bench", "verify_incremental");
  json.kv("seed", seed);
  json.kv("n", r.n);
  json.kv("t", r.t);
  json.kv("labelings", r.labelings);
  json.kv("threads", r.threads);
  json.kv("full_ms", r.full_ms);
  json.kv("delta_ms", r.delta_ms);
  json.kv("full_labelings_per_sec", r.full_per_sec);
  json.kv("delta_labelings_per_sec", r.delta_per_sec);
  json.kv("speedup", r.speedup);
  json.kv("delta_runs", r.delta_stats.delta_runs);
  json.kv("certs_reparsed", r.delta_stats.certs_reparsed);
  json.kv("links_incremental", r.delta_stats.links_incremental);
  json.kv("centers_reswept", r.delta_stats.centers_reswept);
  json.kv("verdicts_carried", r.delta_stats.verdicts_carried);
  json.kv("dirty_fraction", r.dirty_fraction);
  json.kv("full_phase_hit_rate", r.full_phase_hit_rate);
  json.kv("delta_phase_hit_rate", r.delta_phase_hit_rate);
  json.kv("baseline_checked", r.baseline_checked);
  json.kv("verdicts_identical", r.verdicts_identical);
  json.key("metrics");
  metrics.write_json(json);
  json.end_object();
}

void emit_batch(obs::JsonWriter& json, const BatchResult& b,
                const obs::MetricsSnapshot& metrics, std::uint64_t seed) {
  json.begin_object();
  json.kv("bench", "verify_batch");
  json.kv("seed", seed);
  json.kv("n", b.n);
  json.kv("t", b.t);
  json.kv("labelings", b.labelings);
  json.kv("threads", b.threads);
  json.kv("rebuild_ms", b.rebuild_ms);
  json.kv("batch_ms", b.batch_ms);
  json.kv("rebuild_labelings_per_sec", b.rebuild_per_sec);
  json.kv("batch_labelings_per_sec", b.batch_per_sec);
  json.kv("speedup", b.speedup);
  json.kv("atlas_hits", b.atlas.hits);
  json.kv("atlas_misses", b.atlas.misses);
  json.kv("atlas_hit_rate", b.atlas.hit_rate());
  json.kv("atlas_evictions", b.atlas.evictions);
  json.kv("atlas_bytes_in_use", b.atlas.bytes_in_use);
  json.kv("atlas_peak_bytes", b.atlas.peak_bytes);
  json.kv("baseline_checked", b.baseline_checked);
  json.kv("verdicts_identical", b.verdicts_identical);
  json.key("metrics");
  metrics.write_json(json);
  json.end_object();
}

void emit(std::ostream& out, const std::vector<Row>& rows,
          const BatchResult& batch, const obs::MetricsSnapshot& batch_metrics,
          const IncrementalResult& incremental,
          const obs::MetricsSnapshot& incr_metrics, double disabled_span_ns,
          std::uint64_t seed) {
  const double t8_speedup_seq = t8_speedup_sequential(rows);
  double t8_speedup_par = 0.0;
  for (const Row& r : rows)
    if (r.t == 8) t8_speedup_par = r.baseline_ms / r.session_par_ms;
  obs::JsonWriter json(out);
  json.begin_object();
  json.kv("bench", "verify_scale");
  json.kv("id_space", kIdSpace);
  json.kv("seed", seed);
  json.kv("t8_speedup_sequential", t8_speedup_seq);
  json.kv("t8_speedup_parallel", t8_speedup_par);
  json.kv("disabled_span_ns", disabled_span_ns);
  json.key("rows");
  json.begin_array();
  for (const Row& r : rows) {
    json.begin_object();
    json.kv("scheme", r.scheme);
    json.kv("n", r.n);
    json.kv("t", r.t);
    json.kv("max_cert_bits", r.max_cert_bits);
    json.kv("avg_cert_bits", r.avg_cert_bits);
    json.kv("baseline_ms", r.baseline_ms);
    json.kv("session_seq_ms", r.session_seq_ms);
    json.kv("session_par_ms", r.session_par_ms);
    json.kv("threads", r.threads);
    json.kv("verdicts_identical", r.verdicts_identical);
    json.end_object();
  }
  json.end_array();
  json.key("batch");
  emit_batch(json, batch, batch_metrics, seed);
  json.key("incremental");
  emit_incremental(json, incremental, incr_metrics, seed);
  json.end_object();
  PLS_ASSERT(json.finished());
}

/// The observability tax when nothing observes: per-iteration cost of one
/// instrumented-but-disabled trace span (a relaxed atomic load, no clock
/// read).  The CI overhead gate bounds this number.
double disabled_span_cost_ns(std::size_t iters) {
  PLS_REQUIRE(!obs::TraceRecorder::enabled());
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    PLS_TRACE_SPAN("overhead.gate");
  }
  const auto stop = std::chrono::steady_clock::now();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count();
  return static_cast<double>(ns) / static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  bench::CliArgs args(argc, argv);
  const bool smoke = args.take_flag("smoke");
  const std::string out_path = args.take_value("out").value_or("");
  const std::string batch_out_path = args.take_value("batch-out").value_or("");
  const std::string incremental_out_path =
      args.take_value("incremental-out").value_or("");
  const std::string trace_out_path = args.take_value("trace-out").value_or("");
  const std::uint64_t seed = args.take_seed(kDefaultSeed);
  const unsigned threads =
      args.take_unsigned("threads", util::ThreadPool::hardware_threads());
  const unsigned batch_t = args.take_unsigned("t", 8);
  const std::size_t labeling_count =
      args.take_size("labelings", smoke ? 16 : 100);
  const double require_speedup = args.take_double("require-speedup", 0.0);
  const double require_batch_speedup =
      args.take_double("require-batch-speedup", 0.0);
  const double require_incremental_speedup =
      args.take_double("require-incremental-speedup", 0.0);
  const double max_disabled_span_ns =
      args.take_double("max-disabled-span-ns", 0.0);
  if (!args.finish("bench_verify_scale [--smoke] [--out FILE] "
                   "[--batch-out FILE] [--incremental-out FILE] "
                   "[--trace-out FILE] [--seed S] "
                   "[--threads T] [--t T] [--labelings L] "
                   "[--require-speedup X] [--require-batch-speedup X] "
                   "[--require-incremental-speedup X] "
                   "[--max-disabled-span-ns X]"))
    return 2;
  PLS_REQUIRE(batch_t >= 1 && labeling_count >= 1 && threads >= 1);

  const std::size_t n = smoke ? 1024 : 4096;
  util::Rng rng(seed);
  graph::Graph base_graph = graph::random_connected(n, n / 2, rng);
  auto g = std::make_shared<const graph::Graph>(
      graph::relabel_random(base_graph, rng, kIdSpace));

  const schemes::StpLanguage language;
  const schemes::StpScheme stp(language);
  const local::Configuration cfg = language.sample_legal(g, rng);

  std::vector<Row> rows;
  for (const unsigned t : {1u, 2u, 4u, 8u}) {
    if (t == 1) {
      rows.push_back(measure(stp, cfg, 1, threads));
    } else {
      const radius::SpreadScheme spread(stp, t);
      rows.push_back(measure(spread, cfg, t, threads));
    }
    const Row& r = rows.back();
    std::cerr << r.scheme << " n=" << r.n << " t=" << r.t
              << " max_bits=" << r.max_cert_bits
              << " baseline_ms=" << r.baseline_ms
              << " session_seq_ms=" << r.session_seq_ms
              << " session_par_ms=" << r.session_par_ms << "\n";
  }

  // Scenario 2: the adversary-style batch.  Oracle every labeling against
  // the naive engine under --smoke; at full size the naive engine takes
  // ~10 s per labeling, so oracle only the first two (the batch/rebuild/
  // thread-count cross-checks still cover all of them).
  const radius::SpreadScheme batch_spread(stp, batch_t);
  const core::Scheme& batch_scheme =
      batch_t == 1 ? static_cast<const core::Scheme&>(stp)
                   : static_cast<const core::Scheme&>(batch_spread);
  util::Rng batch_rng(seed ^ kBatchSalt);
  const std::vector<core::Labeling> labs =
      candidate_labelings(batch_scheme, cfg, labeling_count, batch_rng);
  obs::MetricsRegistry batch_registry;
  const BatchResult batch =
      measure_batch(batch_scheme, cfg, batch_t, threads, labs,
                    smoke ? labs.size() : 2, batch_registry,
                    !trace_out_path.empty());
  const obs::MetricsSnapshot batch_metrics = batch_registry.snapshot();
  {
    const obs::HistogramSnapshot& sweep =
        batch_metrics.histograms.at("verify.sweep_window_ns");
    const obs::HistogramSnapshot& e2e =
        batch_metrics.histograms.at("verify.e2e_ns");
    std::cerr << "batch n=" << batch.n << " t=" << batch.t
              << " labelings=" << batch.labelings
              << " threads=" << batch.threads
              << " rebuild_ms=" << batch.rebuild_ms
              << " batch_ms=" << batch.batch_ms << " speedup=" << batch.speedup
              << " atlas_hit_rate=" << batch.atlas.hit_rate()
              << " e2e_p50_us=" << static_cast<double>(e2e.quantile(0.5)) / 1e3
              << " e2e_p99_us=" << static_cast<double>(e2e.quantile(0.99)) / 1e3
              << " sweep_p50_us="
              << static_cast<double>(sweep.quantile(0.5)) / 1e3
              << " sweep_p99_us="
              << static_cast<double>(sweep.quantile(0.99)) / 1e3 << "\n";
  }
  if (!trace_out_path.empty()) {
    std::ofstream trace_out(trace_out_path);
    if (!trace_out) {
      std::cerr << "cannot open " << trace_out_path << "\n";
      return 1;
    }
    obs::TraceRecorder::export_chrome_trace(trace_out);
    std::cout << "wrote " << trace_out_path << "\n";
  }

  // Scenario 3: the incremental delta stream.  Always n = 4096 — the dirty
  // fraction (mutated node's ball / n) is what the speedup measures, so a
  // smaller smoke instance would gate a different quantity; --smoke keeps
  // the stream short instead.  The topology is a 64x64 grid: incremental
  // verification is a *locality* play, and the grid is the bounded-growth
  // regime the t-PLS tradeoff targets — |B(v, 8)| <= 145 = 3.5% of n, so
  // re-sweeping only the dirty ball can win big.  (On the random
  // random_connected(n, n/2) instance of scenarios 1-2 the radius-8 ball
  // already covers ~2/3 of the graph — its random-attachment spanning tree
  // has O(log n) depth — and NO delta scheme can beat ~1.5x there; the
  // emitted dirty_fraction makes that boundary explicit.)
  const std::size_t incr_side = 64;
  IncrementalResult incremental;
  obs::MetricsRegistry incr_registry;
  {
    util::Rng incr_rng(seed ^ kIncrementalSalt);
    graph::Graph incr_base = graph::grid(incr_side, incr_side);
    auto incr_g = std::make_shared<const graph::Graph>(
        graph::relabel_random(incr_base, incr_rng, kIdSpace));
    const local::Configuration incr_cfg =
        language.sample_legal(incr_g, incr_rng);
    const radius::SpreadScheme incr_spread(stp, batch_t);
    const core::Scheme& incr_scheme =
        batch_t == 1 ? static_cast<const core::Scheme&>(stp)
                     : static_cast<const core::Scheme&>(incr_spread);
    const MutationStream stream =
        mutation_stream(incr_scheme, incr_cfg, labeling_count, incr_rng);
    incremental = measure_incremental(incr_scheme, incr_cfg, batch_t, threads,
                                      stream, smoke ? 1 : 2, incr_registry);
    const obs::MetricsSnapshot snap = incr_registry.snapshot();
    const obs::HistogramSnapshot& delta_e2e =
        snap.histograms.at("delta.e2e_ns");
    std::cerr << "incremental n=" << incremental.n << " t=" << incremental.t
              << " labelings=" << incremental.labelings
              << " threads=" << incremental.threads
              << " full_ms=" << incremental.full_ms
              << " delta_ms=" << incremental.delta_ms
              << " speedup=" << incremental.speedup
              << " dirty_fraction=" << incremental.dirty_fraction
              << " delta_phase_hit_rate=" << incremental.delta_phase_hit_rate
              << " delta_e2e_p50_us="
              << static_cast<double>(delta_e2e.quantile(0.5)) / 1e3
              << " delta_e2e_p99_us="
              << static_cast<double>(delta_e2e.quantile(0.99)) / 1e3 << "\n";
  }
  const obs::MetricsSnapshot incr_metrics = incr_registry.snapshot();

  const double disabled_span_ns = disabled_span_cost_ns(1u << 20);
  std::cerr << "disabled_span_ns=" << disabled_span_ns << "\n";

  if (out_path.empty()) {
    emit(std::cout, rows, batch, batch_metrics, incremental, incr_metrics,
         disabled_span_ns, seed);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    emit(out, rows, batch, batch_metrics, incremental, incr_metrics,
         disabled_span_ns, seed);
    std::cout << "wrote " << out_path << "\n";
  }
  if (!batch_out_path.empty()) {
    std::ofstream out(batch_out_path);
    if (!out) {
      std::cerr << "cannot open " << batch_out_path << "\n";
      return 1;
    }
    obs::JsonWriter json(out);
    emit_batch(json, batch, batch_metrics, seed);
    PLS_ASSERT(json.finished());
    std::cout << "wrote " << batch_out_path << "\n";
  }
  if (!incremental_out_path.empty()) {
    std::ofstream out(incremental_out_path);
    if (!out) {
      std::cerr << "cannot open " << incremental_out_path << "\n";
      return 1;
    }
    obs::JsonWriter json(out);
    emit_incremental(json, incremental, incr_metrics, seed);
    PLS_ASSERT(json.finished());
    std::cout << "wrote " << incremental_out_path << "\n";
  }

  if (require_speedup > 0.0) {
    const double speedup = t8_speedup_sequential(rows);
    if (speedup < require_speedup) {
      std::cerr << "FAIL: t=8 sequential speedup " << speedup << " < required "
                << require_speedup << "\n";
      return 1;
    }
    std::cerr << "t=8 sequential speedup " << speedup << " >= required "
              << require_speedup << "\n";
  }
  if (require_batch_speedup > 0.0) {
    if (batch.speedup < require_batch_speedup) {
      std::cerr << "FAIL: batch speedup " << batch.speedup << " < required "
                << require_batch_speedup << "\n";
      return 1;
    }
    std::cerr << "batch speedup " << batch.speedup << " >= required "
              << require_batch_speedup << "\n";
  }
  if (require_incremental_speedup > 0.0) {
    if (incremental.speedup < require_incremental_speedup) {
      std::cerr << "FAIL: incremental speedup " << incremental.speedup
                << " < required " << require_incremental_speedup << "\n";
      return 1;
    }
    std::cerr << "incremental speedup " << incremental.speedup
              << " >= required " << require_incremental_speedup << "\n";
  }
  if (max_disabled_span_ns > 0.0) {
    if (disabled_span_ns > max_disabled_span_ns) {
      std::cerr << "FAIL: disabled span costs " << disabled_span_ns
                << " ns > allowed " << max_disabled_span_ns << "\n";
      return 1;
    }
    std::cerr << "disabled span " << disabled_span_ns << " ns <= allowed "
              << max_disabled_span_ns << "\n";
  }
  return 0;
}
