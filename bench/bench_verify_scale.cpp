// Experiment R2 — staged verification at scale.
//
// Two scenarios over the spanning-tree spread:
//
// 1. Single labeling (the PR 2 experiment): the pre-session reference engine
//    (one ball at a time, every ball certificate re-parsed at every center)
//    against VerificationSession (staged pipeline: geometry atlas +
//    parse-once cache + optional thread pool) at n = 4096, t in
//    {1, 2, 4, 8}.  Emits the time–size tradeoff curve as JSON.
//
// 2. Multi-labeling batch (the adversary's workload): L labelings derived
//    from the honest marking by hill-climb-style point mutations, all
//    verified against ONE (scheme, cfg, t).  BatchVerifier + a warm
//    GeometryAtlas (geometry built once, served to every labeling, parse of
//    labeling i+1 overlapped with the sweep of labeling i) against the
//    rebuild-every-run baseline (byte_budget = 0 atlas: same code path, no
//    geometry retained — the pre-atlas behavior).  Reports throughput
//    (labelings/sec), the atlas hit rate, and resident bytes.
//
// Verdict identity is asserted everywhere: scenario 1 across
// baseline/sequential/parallel sessions per row; scenario 2 across the
// rebuild loop and batch runs at threads {1, 2, hardware}, and against
// run_verifier_t_baseline for the first few labelings (all of them under
// --smoke — the naive engine is too slow to oracle 100 full-size labelings).
//
// Usage: bench_verify_scale [--smoke] [--out FILE] [--batch-out FILE]
//                           [--threads T] [--t T] [--labelings L]
//                           [--require-speedup X] [--require-batch-speedup X]
//   --smoke                   n = 1024, fewer labelings (CI-friendly)
//   --out FILE                write the tradeoff JSON there instead of stdout
//   --batch-out FILE          additionally write the batch-scenario JSON
//   --threads T               thread count for the timed runs (default: hw)
//   --t T                     batch-scenario radius (default 8)
//   --labelings L             batch size (default 100; 16 under --smoke)
//   --require-speedup X       fail if t = 8 sequential session speedup < X
//   --require-batch-speedup X fail if batch+atlas throughput gain < X
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "radius/batch.hpp"
#include "radius/session.hpp"
#include "radius/spread.hpp"
#include "schemes/spanning_tree.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace pls;

constexpr graph::RawId kIdSpace = graph::RawId{1} << 56;

struct Row {
  std::string scheme;
  std::size_t n = 0;
  unsigned t = 0;
  std::size_t max_cert_bits = 0;
  double avg_cert_bits = 0.0;
  double baseline_ms = 0.0;     ///< pre-session engine (re-parse per ball)
  double session_seq_ms = 0.0;  ///< session, threads = 1
  double session_par_ms = 0.0;  ///< session, threads = T
  unsigned threads = 1;
  bool verdicts_identical = false;
};

/// The multi-labeling scenario's result sheet.
struct BatchResult {
  std::size_t n = 0;
  unsigned t = 0;
  std::size_t labelings = 0;
  unsigned threads = 1;
  double rebuild_ms = 0.0;  ///< per-run geometry rebuild (budget-0 atlas)
  double batch_ms = 0.0;    ///< BatchVerifier + warm atlas
  double rebuild_per_sec = 0.0;
  double batch_per_sec = 0.0;
  double speedup = 0.0;
  radius::AtlasStats atlas;
  std::size_t baseline_checked = 0;  ///< labelings oracled vs the naive engine
  bool verdicts_identical = false;
};

double time_ms(const std::function<core::Verdict()>& run,
               core::Verdict& out) {
  const auto start = std::chrono::steady_clock::now();
  out = run();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

bool same_verdict(const core::Verdict& a, const core::Verdict& b) {
  return a.accept() == b.accept();
}

Row measure(const core::Scheme& scheme, const local::Configuration& cfg,
            unsigned t, unsigned threads) {
  Row row;
  row.scheme = std::string(scheme.name());
  row.n = cfg.n();
  row.t = t;
  row.threads = threads;

  const core::Labeling lab = scheme.mark(cfg);
  row.max_cert_bits = lab.max_bits();
  row.avg_cert_bits =
      static_cast<double>(lab.total_bits()) / static_cast<double>(cfg.n());

  core::Verdict baseline, seq, par;
  row.baseline_ms = time_ms(
      [&] { return radius::run_verifier_t_baseline(scheme, cfg, lab, t); },
      baseline);
  row.session_seq_ms = time_ms(
      [&] {
        radius::SessionOptions options;
        options.threads = 1;
        radius::VerificationSession session(scheme, cfg, t, options);
        return session.run(lab);
      },
      seq);
  row.session_par_ms = time_ms(
      [&] {
        radius::SessionOptions options;
        options.threads = threads;
        radius::VerificationSession session(scheme, cfg, t, options);
        return session.run(lab);
      },
      par);

  // Micro-assert for the staged pipeline: the session path serves geometry
  // through the atlas and interns chunk payloads into dense ids after the
  // parallel parse (link_parses), while the baseline engine rebuilds balls
  // and re-parses raw BitStrings everywhere — any divergence between the
  // two shows up right here.
  row.verdicts_identical =
      same_verdict(baseline, seq) && same_verdict(baseline, par);
  PLS_ASSERT(row.verdicts_identical);
  PLS_ASSERT(baseline.all_accept());  // honest marking on a legal instance
  return row;
}

/// Hill-climb-style candidate stream: each labeling is the previous one with
/// one node's certificate replaced (by a donor node's certificate or random
/// bits) — exactly the adversary's usage pattern.
std::vector<core::Labeling> candidate_labelings(const core::Scheme& scheme,
                                                const local::Configuration& cfg,
                                                std::size_t count,
                                                util::Rng& rng) {
  std::vector<core::Labeling> labs;
  labs.reserve(count);
  labs.push_back(scheme.mark(cfg));
  const std::size_t n = cfg.n();
  while (labs.size() < count) {
    core::Labeling next = labs.back();
    const std::size_t v = rng.below(n);
    if (rng.below(2) == 0) {
      next.certs[v] = next.certs[rng.below(n)];
    } else {
      next.certs[v] = local::random_state(rng.below(64), rng);
    }
    labs.push_back(std::move(next));
  }
  return labs;
}

BatchResult measure_batch(const core::Scheme& scheme,
                          const local::Configuration& cfg, unsigned t,
                          unsigned threads,
                          std::span<const core::Labeling> labs,
                          std::size_t baseline_checked) {
  BatchResult r;
  r.n = cfg.n();
  r.t = t;
  r.labelings = labs.size();
  r.threads = threads;

  // Rebuild-every-run baseline: the identical staged code path with a
  // byte_budget = 0 atlas (nothing retained between runs) and no batch
  // pipelining — what every pre-atlas caller paid.
  std::vector<core::Verdict> rebuild_verdicts;
  rebuild_verdicts.reserve(labs.size());
  {
    radius::BatchOptions options;
    options.threads = threads;
    options.atlas = std::make_shared<radius::GeometryAtlas>(
        radius::AtlasOptions{0, 64});
    radius::BatchVerifier rebuild(scheme, cfg, t, options);
    const auto start = std::chrono::steady_clock::now();
    for (const core::Labeling& lab : labs)
      rebuild_verdicts.push_back(rebuild.run_one(lab));
    const auto stop = std::chrono::steady_clock::now();
    r.rebuild_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
  }

  // BatchVerifier + warm atlas, the timed contender.
  std::vector<core::Verdict> batch_verdicts;
  {
    radius::BatchOptions options;
    options.threads = threads;
    radius::BatchVerifier batch(scheme, cfg, t, options);
    const auto start = std::chrono::steady_clock::now();
    batch_verdicts = batch.run(labs);
    const auto stop = std::chrono::steady_clock::now();
    r.batch_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    r.atlas = batch.atlas().stats();
  }

  r.rebuild_per_sec =
      static_cast<double>(labs.size()) / (r.rebuild_ms / 1000.0);
  r.batch_per_sec = static_cast<double>(labs.size()) / (r.batch_ms / 1000.0);
  r.speedup = r.rebuild_ms / r.batch_ms;

  // Verdict identity: batch == rebuild for every labeling, batch at
  // threads {1, 2, hardware} all equal (untimed), and the first
  // `baseline_checked` labelings against the naive reference engine.
  bool identical = true;
  for (std::size_t i = 0; i < labs.size(); ++i)
    identical = identical &&
                same_verdict(rebuild_verdicts[i], batch_verdicts[i]);
  for (const unsigned check_threads :
       {1u, 2u, util::ThreadPool::hardware_threads()}) {
    radius::BatchOptions options;
    options.threads = check_threads;
    radius::BatchVerifier batch(scheme, cfg, t, options);
    const std::vector<core::Verdict> verdicts = batch.run(labs);
    for (std::size_t i = 0; i < labs.size(); ++i)
      identical = identical && same_verdict(verdicts[i], batch_verdicts[i]);
  }
  r.baseline_checked = std::min(baseline_checked, labs.size());
  for (std::size_t i = 0; i < r.baseline_checked; ++i)
    identical = identical &&
                same_verdict(radius::run_verifier_t_baseline(scheme, cfg,
                                                             labs[i], t),
                             batch_verdicts[i]);
  r.verdicts_identical = identical;
  PLS_ASSERT(identical);
  return r;
}

double t8_speedup_sequential(const std::vector<Row>& rows) {
  for (const Row& r : rows)
    if (r.t == 8) return r.baseline_ms / r.session_seq_ms;
  return 0.0;
}

void emit_batch(std::ostream& out, const BatchResult& b) {
  out << "{\n  \"bench\": \"verify_batch\",\n"
      << "  \"n\": " << b.n << ",\n  \"t\": " << b.t
      << ",\n  \"labelings\": " << b.labelings
      << ",\n  \"threads\": " << b.threads
      << ",\n  \"rebuild_ms\": " << b.rebuild_ms
      << ",\n  \"batch_ms\": " << b.batch_ms
      << ",\n  \"rebuild_labelings_per_sec\": " << b.rebuild_per_sec
      << ",\n  \"batch_labelings_per_sec\": " << b.batch_per_sec
      << ",\n  \"speedup\": " << b.speedup
      << ",\n  \"atlas_hits\": " << b.atlas.hits
      << ",\n  \"atlas_misses\": " << b.atlas.misses
      << ",\n  \"atlas_hit_rate\": " << b.atlas.hit_rate()
      << ",\n  \"atlas_evictions\": " << b.atlas.evictions
      << ",\n  \"atlas_bytes_in_use\": " << b.atlas.bytes_in_use
      << ",\n  \"atlas_peak_bytes\": " << b.atlas.peak_bytes
      << ",\n  \"baseline_checked\": " << b.baseline_checked
      << ",\n  \"verdicts_identical\": "
      << (b.verdicts_identical ? "true" : "false") << "\n}\n";
}

void emit(std::ostream& out, const std::vector<Row>& rows,
          const BatchResult& batch) {
  const double t8_speedup_seq = t8_speedup_sequential(rows);
  double t8_speedup_par = 0.0;
  for (const Row& r : rows)
    if (r.t == 8) t8_speedup_par = r.baseline_ms / r.session_par_ms;
  out << "{\n  \"bench\": \"verify_scale\",\n  \"id_space\": " << kIdSpace
      << ",\n  \"t8_speedup_sequential\": " << t8_speedup_seq
      << ",\n  \"t8_speedup_parallel\": " << t8_speedup_par
      << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"scheme\": \"" << r.scheme << "\", \"n\": " << r.n
        << ", \"t\": " << r.t << ", \"max_cert_bits\": " << r.max_cert_bits
        << ", \"avg_cert_bits\": " << r.avg_cert_bits
        << ", \"baseline_ms\": " << r.baseline_ms
        << ", \"session_seq_ms\": " << r.session_seq_ms
        << ", \"session_par_ms\": " << r.session_par_ms
        << ", \"threads\": " << r.threads << ", \"verdicts_identical\": "
        << (r.verdicts_identical ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"batch\": ";
  emit_batch(out, batch);
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::CliArgs args(argc, argv);
  const bool smoke = args.take_flag("smoke");
  const std::string out_path = args.take_value("out").value_or("");
  const std::string batch_out_path = args.take_value("batch-out").value_or("");
  const unsigned threads =
      args.take_unsigned("threads", util::ThreadPool::hardware_threads());
  const unsigned batch_t = args.take_unsigned("t", 8);
  const std::size_t labeling_count =
      args.take_size("labelings", smoke ? 16 : 100);
  const double require_speedup = args.take_double("require-speedup", 0.0);
  const double require_batch_speedup =
      args.take_double("require-batch-speedup", 0.0);
  if (!args.finish("bench_verify_scale [--smoke] [--out FILE] "
                   "[--batch-out FILE] [--threads T] [--t T] [--labelings L] "
                   "[--require-speedup X] [--require-batch-speedup X]"))
    return 2;
  PLS_REQUIRE(batch_t >= 1 && labeling_count >= 1 && threads >= 1);

  const std::size_t n = smoke ? 1024 : 4096;
  util::Rng rng(0xBA11'5CA1Eull);
  graph::Graph base_graph = graph::random_connected(n, n / 2, rng);
  auto g = std::make_shared<const graph::Graph>(
      graph::relabel_random(base_graph, rng, kIdSpace));

  const schemes::StpLanguage language;
  const schemes::StpScheme stp(language);
  const local::Configuration cfg = language.sample_legal(g, rng);

  std::vector<Row> rows;
  for (const unsigned t : {1u, 2u, 4u, 8u}) {
    if (t == 1) {
      rows.push_back(measure(stp, cfg, 1, threads));
    } else {
      const radius::SpreadScheme spread(stp, t);
      rows.push_back(measure(spread, cfg, t, threads));
    }
    const Row& r = rows.back();
    std::cerr << r.scheme << " n=" << r.n << " t=" << r.t
              << " max_bits=" << r.max_cert_bits
              << " baseline_ms=" << r.baseline_ms
              << " session_seq_ms=" << r.session_seq_ms
              << " session_par_ms=" << r.session_par_ms << "\n";
  }

  // Scenario 2: the adversary-style batch.  Oracle every labeling against
  // the naive engine under --smoke; at full size the naive engine takes
  // ~10 s per labeling, so oracle only the first two (the batch/rebuild/
  // thread-count cross-checks still cover all of them).
  const radius::SpreadScheme batch_spread(stp, batch_t);
  const core::Scheme& batch_scheme =
      batch_t == 1 ? static_cast<const core::Scheme&>(stp)
                   : static_cast<const core::Scheme&>(batch_spread);
  util::Rng batch_rng(0xA7'1A5ull);
  const std::vector<core::Labeling> labs =
      candidate_labelings(batch_scheme, cfg, labeling_count, batch_rng);
  const BatchResult batch =
      measure_batch(batch_scheme, cfg, batch_t, threads, labs,
                    smoke ? labs.size() : 2);
  std::cerr << "batch n=" << batch.n << " t=" << batch.t
            << " labelings=" << batch.labelings << " threads=" << batch.threads
            << " rebuild_ms=" << batch.rebuild_ms
            << " batch_ms=" << batch.batch_ms << " speedup=" << batch.speedup
            << " atlas_hit_rate=" << batch.atlas.hit_rate() << "\n";

  if (out_path.empty()) {
    emit(std::cout, rows, batch);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    emit(out, rows, batch);
    std::cout << "wrote " << out_path << "\n";
  }
  if (!batch_out_path.empty()) {
    std::ofstream out(batch_out_path);
    if (!out) {
      std::cerr << "cannot open " << batch_out_path << "\n";
      return 1;
    }
    emit_batch(out, batch);
    std::cout << "wrote " << batch_out_path << "\n";
  }

  if (require_speedup > 0.0) {
    const double speedup = t8_speedup_sequential(rows);
    if (speedup < require_speedup) {
      std::cerr << "FAIL: t=8 sequential speedup " << speedup << " < required "
                << require_speedup << "\n";
      return 1;
    }
    std::cerr << "t=8 sequential speedup " << speedup << " >= required "
              << require_speedup << "\n";
  }
  if (require_batch_speedup > 0.0) {
    if (batch.speedup < require_batch_speedup) {
      std::cerr << "FAIL: batch speedup " << batch.speedup << " < required "
                << require_batch_speedup << "\n";
      return 1;
    }
    std::cerr << "batch speedup " << batch.speedup << " >= required "
              << require_batch_speedup << "\n";
  }
  return 0;
}
