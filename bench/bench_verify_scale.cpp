// Experiment R2 — parse-once parallel verification at scale.
//
// The t-PLS tradeoff is only real if verification at large t is actually
// cheap: this bench pits the pre-session reference engine (one ball at a
// time, every ball certificate re-parsed at every center — the pre-PR hot
// path) against VerificationSession (parse-once cache, merged BFS+CSR ball
// construction, optional thread pool) on the spanning-tree spread at
// n = 4096, t in {1, 2, 4, 8}, and emits the full time–size tradeoff curve
// as JSON: certificate bits vs verification wall-time per engine.
//
// Verdict identity across baseline / sequential session / parallel session
// is asserted for every row.  The headline t = 8 speedup is reported in the
// JSON (t8_speedup_*); pass --require-speedup X to make the run fail unless
// the sequential-session speedup reaches X (the acceptance gate is 10; it is
// opt-in so a loaded CI host can't flake the smoke run).
//
// Usage: bench_verify_scale [--smoke] [--out FILE] [--threads T]
//                           [--require-speedup X]
//   --smoke             n = 1024 (CI-friendly); default n = 4096
//   --out FILE          write the JSON there instead of stdout
//   --threads T         parallel session thread count (default: hardware)
//   --require-speedup X exit nonzero if t = 8 sequential speedup < X
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "radius/session.hpp"
#include "radius/spread.hpp"
#include "schemes/spanning_tree.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace pls;

constexpr graph::RawId kIdSpace = graph::RawId{1} << 56;

struct Row {
  std::string scheme;
  std::size_t n = 0;
  unsigned t = 0;
  std::size_t max_cert_bits = 0;
  double avg_cert_bits = 0.0;
  double baseline_ms = 0.0;     ///< pre-session engine (re-parse per ball)
  double session_seq_ms = 0.0;  ///< session, threads = 1
  double session_par_ms = 0.0;  ///< session, threads = T
  unsigned threads = 1;
  bool verdicts_identical = false;
};

double time_ms(const std::function<core::Verdict()>& run,
               core::Verdict& out) {
  const auto start = std::chrono::steady_clock::now();
  out = run();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

bool same_verdict(const core::Verdict& a, const core::Verdict& b) {
  return a.accept() == b.accept();
}

Row measure(const core::Scheme& scheme, const local::Configuration& cfg,
            unsigned t, unsigned threads) {
  Row row;
  row.scheme = std::string(scheme.name());
  row.n = cfg.n();
  row.t = t;
  row.threads = threads;

  const core::Labeling lab = scheme.mark(cfg);
  row.max_cert_bits = lab.max_bits();
  row.avg_cert_bits =
      static_cast<double>(lab.total_bits()) / static_cast<double>(cfg.n());

  core::Verdict baseline, seq, par;
  row.baseline_ms = time_ms(
      [&] { return radius::run_verifier_t_baseline(scheme, cfg, lab, t); },
      baseline);
  row.session_seq_ms = time_ms(
      [&] {
        radius::SessionOptions options;
        options.threads = 1;
        radius::VerificationSession session(scheme, cfg, t, options);
        return session.run(lab);
      },
      seq);
  row.session_par_ms = time_ms(
      [&] {
        radius::SessionOptions options;
        options.threads = threads;
        radius::VerificationSession session(scheme, cfg, t, options);
        return session.run(lab);
      },
      par);

  // Micro-assert for the parse-link pipeline: the session path interns
  // chunk payloads into dense ids after the parallel parse (link_parses)
  // and compares ids on the chunk-agreement hot path, while the baseline
  // engine re-parses raw BitStrings everywhere — any divergence between the
  // interned and uninterned equality checks shows up right here.
  row.verdicts_identical =
      same_verdict(baseline, seq) && same_verdict(baseline, par);
  PLS_ASSERT(row.verdicts_identical);
  PLS_ASSERT(baseline.all_accept());  // honest marking on a legal instance
  return row;
}

double t8_speedup_sequential(const std::vector<Row>& rows) {
  for (const Row& r : rows)
    if (r.t == 8) return r.baseline_ms / r.session_seq_ms;
  return 0.0;
}

void emit(std::ostream& out, const std::vector<Row>& rows) {
  const double t8_speedup_seq = t8_speedup_sequential(rows);
  double t8_speedup_par = 0.0;
  for (const Row& r : rows)
    if (r.t == 8) t8_speedup_par = r.baseline_ms / r.session_par_ms;
  out << "{\n  \"bench\": \"verify_scale\",\n  \"id_space\": " << kIdSpace
      << ",\n  \"t8_speedup_sequential\": " << t8_speedup_seq
      << ",\n  \"t8_speedup_parallel\": " << t8_speedup_par
      << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"scheme\": \"" << r.scheme << "\", \"n\": " << r.n
        << ", \"t\": " << r.t << ", \"max_cert_bits\": " << r.max_cert_bits
        << ", \"avg_cert_bits\": " << r.avg_cert_bits
        << ", \"baseline_ms\": " << r.baseline_ms
        << ", \"session_seq_ms\": " << r.session_seq_ms
        << ", \"session_par_ms\": " << r.session_par_ms
        << ", \"threads\": " << r.threads << ", \"verdicts_identical\": "
        << (r.verdicts_identical ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  unsigned threads = util::ThreadPool::hardware_threads();
  double require_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--require-speedup" && i + 1 < argc) {
      require_speedup = std::stod(argv[++i]);
    } else {
      std::cerr << "usage: bench_verify_scale [--smoke] [--out FILE] "
                   "[--threads T] [--require-speedup X]\n";
      return 2;
    }
  }

  const std::size_t n = smoke ? 1024 : 4096;
  util::Rng rng(0xBA11'5CA1Eull);
  graph::Graph base_graph = graph::random_connected(n, n / 2, rng);
  auto g = std::make_shared<const graph::Graph>(
      graph::relabel_random(base_graph, rng, kIdSpace));

  const schemes::StpLanguage language;
  const schemes::StpScheme stp(language);
  const local::Configuration cfg = language.sample_legal(g, rng);

  std::vector<Row> rows;
  for (const unsigned t : {1u, 2u, 4u, 8u}) {
    if (t == 1) {
      rows.push_back(measure(stp, cfg, 1, threads));
    } else {
      const radius::SpreadScheme spread(stp, t);
      rows.push_back(measure(spread, cfg, t, threads));
    }
    const Row& r = rows.back();
    std::cerr << r.scheme << " n=" << r.n << " t=" << r.t
              << " max_bits=" << r.max_cert_bits
              << " baseline_ms=" << r.baseline_ms
              << " session_seq_ms=" << r.session_seq_ms
              << " session_par_ms=" << r.session_par_ms << "\n";
  }

  if (out_path.empty()) {
    emit(std::cout, rows);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    emit(out, rows);
    std::cout << "wrote " << out_path << "\n";
  }

  if (require_speedup > 0.0) {
    const double speedup = t8_speedup_sequential(rows);
    if (speedup < require_speedup) {
      std::cerr << "FAIL: t=8 sequential speedup " << speedup << " < required "
                << require_speedup << "\n";
      return 1;
    }
    std::cerr << "t=8 sequential speedup " << speedup << " >= required "
              << require_speedup << "\n";
  }
  return 0;
}
