// Experiment R2 — staged verification at scale.
//
// Five scenarios over the spanning-tree spread:
//
// 1. Single labeling (the PR 2 experiment): the pre-session reference engine
//    (one ball at a time, every ball certificate re-parsed at every center)
//    against VerificationSession (staged pipeline: geometry atlas +
//    parse-once cache + optional thread pool) at n = 4096, t in
//    {1, 2, 4, 8}.  Emits the time–size tradeoff curve as JSON.
//
// 2. Multi-labeling batch (the adversary's workload): L labelings derived
//    from the honest marking by hill-climb-style point mutations, all
//    verified against ONE (scheme, cfg, t).  BatchVerifier + a warm
//    GeometryAtlas (geometry built once, served to every labeling, parse of
//    labeling i+1 overlapped with the sweep of labeling i) against the
//    rebuild-every-run baseline (byte_budget = 0 atlas: same code path, no
//    geometry retained — the pre-atlas behavior).  Reports throughput
//    (labelings/sec), the atlas hit rate, and resident bytes.
//
// 3. Incremental delta stream (the hill-climb's inner loop): a single-cert
//    mutation stream — labeling i is labeling i-1 with exactly one node's
//    certificate replaced — verified (a) by the full pipelined batch over a
//    warm atlas (the strongest full-re-verify path) and (b) through
//    BatchVerifier::run_delta with the mutated node declared per step, so
//    only the touched certificate is re-parsed and only the dirty centers
//    (the mutated node's radius-t ball, by ball symmetry) are re-swept.
//    Always n = 4096 on a 64x64 grid — incremental verification is a
//    locality play, so the instance is the bounded-growth regime where
//    radius-8 balls are 3.5% of the graph, not the expander-like random
//    instance whose balls cover 2/3 of it (the emitted dirty_fraction
//    quantifies that boundary); --smoke only shortens the stream.  Reports
//    both throughputs, the delta work counters, and per-phase atlas hit
//    rates (snapshot-diffed AtlasStats, AtlasStats::since).
//
// 4. Serving tier (the scheduler A/B + open loop): a skewed fragment-style
//    instance — dense chorded-ring core on the low sixteenth of the index
//    space, sparse chains over the rest — where the static contiguous split
//    leaves most slots idle behind the slice that drew the core.  Runs the
//    identical batch under SweepMode::kStatic and kStealing (shared warm
//    atlas, verdicts asserted bit-identical, also across thread counts),
//    reports the scheduler speedup plus the steal counters and per-slot
//    busy-time quantiles from the obs registry, re-runs the A/B on
//    scenario 2's uniform random instance to pin the no-regression bound,
//    then drives an OPEN-LOOP phase: requests arrive on a fixed schedule
//    (default 80% of the measured closed-loop stealing throughput,
//    --arrival-rate overrides) whether or not the previous one finished, so
//    queueing delay lands in the next request's latency.  Reports sustained
//    labelings/sec and p50/p99 latency from the serve.latency_ns histogram.
//
// 5. Admission A/B (the TinyLFU case): a delta stream whose touched nodes
//    are zipf-popular (rank through a random permutation) on scenario 3's
//    grid, replayed against an atlas whose budget holds a sixth of the
//    geometry — once under kScanResistant (the every-k-th turnover guard)
//    and once under kTinyLFU (frequency-sketch admission).  The hot nodes'
//    radius-t balls concentrate the block traffic; the sketch vetoes
//    cold-tail contenders the blind turnover would admit.  Reports both hit
//    rates, their ratio (the --require-tinylfu-hit-ratio gate),
//    labelings/sec per policy, and sketch_rejects; both constrained replays
//    are asserted verdict-identical to an unconstrained ground-truth replay.
//
// Verdict identity is asserted everywhere: scenario 1 across
// baseline/sequential/parallel sessions per row; scenario 2 across the
// rebuild loop and batch runs at threads {1, 2, hardware}, and against
// run_verifier_t_baseline for the first few labelings (all of them under
// --smoke — the naive engine is too slow to oracle 100 full-size labelings);
// scenario 3 delta vs. full batch for every labeling of the stream, delta at
// threads {1, 2, hardware} over a prefix, and the stream head against the
// naive engine (full runs only — it is a 4096-node t = 8 instance).
//
// Per-stage latency (parse/link, sweep window, delta stages) is recorded
// into an obs::MetricsRegistry by the verifiers themselves
// (BatchOptions::metrics); the emitted JSON carries the full snapshot —
// count/mean/p50/p90/p95/p99 per stage — and stderr quotes the headline
// p50/p99.  --trace-out additionally records the timed batch contender with
// obs::TraceRecorder and writes a chrome://tracing document showing the
// parse(i+1)-inside-sweep-window(i) pipelining overlap and per-slot sweep
// skew.  --max-disabled-span-ns gates the observability tax: the measured
// per-span cost of an instrumented-but-disabled trace point (one relaxed
// atomic load) must stay under the bound.
//
// Usage: bench_verify_scale [--smoke] [--out FILE] [--batch-out FILE]
//                           [--incremental-out FILE] [--trace-out FILE]
//                           [--serving-out FILE]
//                           [--seed S] [--threads T] [--t T] [--labelings L]
//                           [--require-speedup X] [--require-batch-speedup X]
//                           [--require-incremental-speedup X]
//                           [--max-disabled-span-ns X]
//                           [--require-steal-speedup X]
//                           [--require-uniform-ratio R] [--arrival-rate A]
//   --smoke                   n = 1024 for scenarios 1-2, fewer labelings
//                             (CI-friendly; scenario 3 stays at n = 4096)
//   --out FILE                write the tradeoff JSON there instead of stdout
//   --batch-out FILE          additionally write the batch-scenario JSON
//   --incremental-out FILE    additionally write the delta-scenario JSON
//   --trace-out FILE          record the timed batch run; write chrome-trace
//                             JSON there (load via chrome://tracing)
//   --serving-out FILE        additionally write the serving-scenario JSON
//   --seed S                  base RNG seed (echoed into every JSON)
//   --threads T               thread count for the timed runs (default: hw)
//   --t T                     batch/incremental radius (default 8)
//   --labelings L             batch + stream size (default 100; 16 under
//                             --smoke)
//   --require-speedup X       fail if t = 8 sequential session speedup < X
//   --require-batch-speedup X fail if batch+atlas throughput gain < X
//   --require-incremental-speedup X fail if delta-vs-full gain < X
//   --max-disabled-span-ns X  fail if a disabled trace span costs > X ns
//   --require-steal-speedup X fail if the skewed-instance static/stealing
//                             speedup < X (needs real cores; a CI gate for
//                             multi-core runners, meaningless at threads=1)
//   --require-uniform-ratio R fail if static_ms/stealing_ms on the uniform
//                             instance < R (no-regression bound; R slightly
//                             below 1.0 absorbs timer noise)
//   --arrival-rate A          open-loop offered rate, labelings/sec
//                             (default: 0.8x the measured closed-loop
//                             stealing throughput)
//   --admission-out FILE      additionally write the admission-scenario JSON
//   --zipf-s S                admission-stream skew exponent (default 1.0)
//   --require-tinylfu-hit-ratio R fail if the tinylfu/scan-resistant atlas
//                             hit-rate ratio on the zipf stream < R
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "radius/batch.hpp"
#include "radius/session.hpp"
#include "radius/spread.hpp"
#include "schemes/spanning_tree.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace pls;

constexpr graph::RawId kIdSpace = graph::RawId{1} << 56;

// Default base seed; --seed overrides.  The stream RNGs are salted so the
// default reproduces the historical per-scenario seeds (0xBA115CA1E for the
// instance, 0xA71A5 for the batch stream) exactly.
constexpr std::uint64_t kDefaultSeed = 0xBA11'5CA1Eull;
constexpr std::uint64_t kBatchSalt = kDefaultSeed ^ 0xA7'1A5ull;
constexpr std::uint64_t kIncrementalSalt = 0xDE17A'BA11ull;
constexpr std::uint64_t kServingSalt = 0x5E1F'57EA1ull;
constexpr std::uint64_t kAdmissionSalt = 0xAD317'CAC3Eull;

struct Row {
  std::string scheme;
  std::size_t n = 0;
  unsigned t = 0;
  std::size_t max_cert_bits = 0;
  double avg_cert_bits = 0.0;
  double baseline_ms = 0.0;     ///< pre-session engine (re-parse per ball)
  double session_seq_ms = 0.0;  ///< session, threads = 1
  double session_par_ms = 0.0;  ///< session, threads = T
  unsigned threads = 1;
  bool verdicts_identical = false;
};

/// The multi-labeling scenario's result sheet.
struct BatchResult {
  std::size_t n = 0;
  unsigned t = 0;
  std::size_t labelings = 0;
  unsigned threads = 1;
  double rebuild_ms = 0.0;  ///< per-run geometry rebuild (budget-0 atlas)
  double batch_ms = 0.0;    ///< BatchVerifier + warm atlas
  double rebuild_per_sec = 0.0;
  double batch_per_sec = 0.0;
  double speedup = 0.0;
  radius::AtlasStats atlas;
  std::size_t baseline_checked = 0;  ///< labelings oracled vs the naive engine
  bool verdicts_identical = false;
};

double time_ms(const std::function<core::Verdict()>& run,
               core::Verdict& out) {
  const auto start = std::chrono::steady_clock::now();
  out = run();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

bool same_verdict(const core::Verdict& a, const core::Verdict& b) {
  return a.accept() == b.accept();
}

Row measure(const core::Scheme& scheme, const local::Configuration& cfg,
            unsigned t, unsigned threads) {
  Row row;
  row.scheme = std::string(scheme.name());
  row.n = cfg.n();
  row.t = t;
  row.threads = threads;

  const core::Labeling lab = scheme.mark(cfg);
  row.max_cert_bits = lab.max_bits();
  row.avg_cert_bits =
      static_cast<double>(lab.total_bits()) / static_cast<double>(cfg.n());

  core::Verdict baseline, seq, par;
  row.baseline_ms = time_ms(
      [&] { return radius::run_verifier_t_baseline(scheme, cfg, lab, t); },
      baseline);
  row.session_seq_ms = time_ms(
      [&] {
        radius::SessionOptions options;
        options.threads = 1;
        radius::VerificationSession session(scheme, cfg, t, options);
        return session.run(lab);
      },
      seq);
  row.session_par_ms = time_ms(
      [&] {
        radius::SessionOptions options;
        options.threads = threads;
        radius::VerificationSession session(scheme, cfg, t, options);
        return session.run(lab);
      },
      par);

  // Micro-assert for the staged pipeline: the session path serves geometry
  // through the atlas and interns chunk payloads into dense ids after the
  // parallel parse (link_parses), while the baseline engine rebuilds balls
  // and re-parses raw BitStrings everywhere — any divergence between the
  // two shows up right here.
  row.verdicts_identical =
      same_verdict(baseline, seq) && same_verdict(baseline, par);
  PLS_ASSERT(row.verdicts_identical);
  PLS_ASSERT(baseline.all_accept());  // honest marking on a legal instance
  return row;
}

/// Hill-climb-style candidate stream: each labeling is the previous one with
/// one node's certificate replaced (by a donor node's certificate or random
/// bits) — exactly the adversary's usage pattern.
std::vector<core::Labeling> candidate_labelings(const core::Scheme& scheme,
                                                const local::Configuration& cfg,
                                                std::size_t count,
                                                util::Rng& rng) {
  std::vector<core::Labeling> labs;
  labs.reserve(count);
  labs.push_back(scheme.mark(cfg));
  const std::size_t n = cfg.n();
  while (labs.size() < count) {
    core::Labeling next = labs.back();
    const std::size_t v = rng.below(n);
    if (rng.below(2) == 0) {
      next.certs[v] = next.certs[rng.below(n)];
    } else {
      next.certs[v] = local::random_state(rng.below(64), rng);
    }
    labs.push_back(std::move(next));
  }
  return labs;
}

BatchResult measure_batch(const core::Scheme& scheme,
                          const local::Configuration& cfg, unsigned t,
                          unsigned threads,
                          std::span<const core::Labeling> labs,
                          std::size_t baseline_checked,
                          obs::MetricsRegistry& registry, bool trace) {
  BatchResult r;
  r.n = cfg.n();
  r.t = t;
  r.labelings = labs.size();
  r.threads = threads;

  // Rebuild-every-run baseline: the identical staged code path with a
  // byte_budget = 0 atlas (nothing retained between runs) and no batch
  // pipelining — what every pre-atlas caller paid.
  std::vector<core::Verdict> rebuild_verdicts;
  rebuild_verdicts.reserve(labs.size());
  {
    radius::BatchOptions options;
    options.threads = threads;
    options.atlas = std::make_shared<radius::GeometryAtlas>(
        radius::AtlasOptions{0, 64});
    radius::BatchVerifier rebuild(scheme, cfg, t, options);
    const auto start = std::chrono::steady_clock::now();
    for (const core::Labeling& lab : labs)
      rebuild_verdicts.push_back(rebuild.run_one(lab));
    const auto stop = std::chrono::steady_clock::now();
    r.rebuild_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
  }

  // BatchVerifier + warm atlas, the timed contender — the run the stage
  // histograms (and, under --trace-out, the chrome trace) describe.
  std::vector<core::Verdict> batch_verdicts;
  {
    radius::BatchOptions options;
    options.threads = threads;
    options.metrics = &registry;
    radius::BatchVerifier batch(scheme, cfg, t, options);
    if (trace) obs::TraceRecorder::enable();
    const auto start = std::chrono::steady_clock::now();
    batch_verdicts = batch.run(labs);
    const auto stop = std::chrono::steady_clock::now();
    if (trace) obs::TraceRecorder::disable();
    r.batch_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    r.atlas = batch.atlas().stats();
  }

  r.rebuild_per_sec =
      static_cast<double>(labs.size()) / (r.rebuild_ms / 1000.0);
  r.batch_per_sec = static_cast<double>(labs.size()) / (r.batch_ms / 1000.0);
  r.speedup = r.rebuild_ms / r.batch_ms;

  // Verdict identity: batch == rebuild for every labeling, batch at
  // threads {1, 2, hardware} all equal (untimed), and the first
  // `baseline_checked` labelings against the naive reference engine.
  bool identical = true;
  for (std::size_t i = 0; i < labs.size(); ++i)
    identical = identical &&
                same_verdict(rebuild_verdicts[i], batch_verdicts[i]);
  for (const unsigned check_threads :
       {1u, 2u, util::ThreadPool::hardware_threads()}) {
    radius::BatchOptions options;
    options.threads = check_threads;
    radius::BatchVerifier batch(scheme, cfg, t, options);
    const std::vector<core::Verdict> verdicts = batch.run(labs);
    for (std::size_t i = 0; i < labs.size(); ++i)
      identical = identical && same_verdict(verdicts[i], batch_verdicts[i]);
  }
  r.baseline_checked = std::min(baseline_checked, labs.size());
  for (std::size_t i = 0; i < r.baseline_checked; ++i)
    identical = identical &&
                same_verdict(radius::run_verifier_t_baseline(scheme, cfg,
                                                             labs[i], t),
                             batch_verdicts[i]);
  r.verdicts_identical = identical;
  PLS_ASSERT(identical);
  return r;
}

/// Scenario 3's result sheet.
struct IncrementalResult {
  std::size_t n = 0;
  unsigned t = 0;
  std::size_t labelings = 0;
  unsigned threads = 1;
  double full_ms = 0.0;    ///< pipelined batch, warm atlas (full re-verify)
  double delta_ms = 0.0;   ///< one seeding run + run_delta per mutation
  double full_per_sec = 0.0;
  double delta_per_sec = 0.0;
  double speedup = 0.0;
  radius::DeltaStats delta_stats;
  double dirty_fraction = 0.0;       ///< avg re-swept centers / n per delta
  double full_phase_hit_rate = 0.0;  ///< atlas, full phase only
  double delta_phase_hit_rate = 0.0; ///< atlas, delta phase only
  std::size_t baseline_checked = 0;
  bool verdicts_identical = false;
};

/// Single-certificate mutation stream with the mutated node recorded per
/// step — the delta path's declared input.  labs[0] is the honest marking;
/// labs[i] replaces one certificate of labs[i-1] (donor copy or random
/// bits), touched[i-1] names the node.
struct MutationStream {
  std::vector<core::Labeling> labs;
  std::vector<graph::NodeIndex> touched;
};

MutationStream mutation_stream(const core::Scheme& scheme,
                               const local::Configuration& cfg,
                               std::size_t count, util::Rng& rng) {
  MutationStream stream;
  stream.labs.reserve(count);
  stream.labs.push_back(scheme.mark(cfg));
  const std::size_t n = cfg.n();
  while (stream.labs.size() < count) {
    core::Labeling next = stream.labs.back();
    const auto v = static_cast<graph::NodeIndex>(rng.below(n));
    if (rng.below(2) == 0) {
      next.certs[v] = next.certs[rng.below(n)];
    } else {
      next.certs[v] = local::random_state(rng.below(64), rng);
    }
    stream.labs.push_back(std::move(next));
    stream.touched.push_back(v);
  }
  return stream;
}

/// Replays the stream through run_delta on `verifier` (one full seeding run
/// for labs[0], then one delta per mutation).
std::vector<core::Verdict> replay_deltas(radius::BatchVerifier& verifier,
                                         const MutationStream& stream) {
  std::vector<core::Verdict> verdicts;
  verdicts.reserve(stream.labs.size());
  verdicts.push_back(verifier.run_one(stream.labs.front()));
  radius::LabelingDelta delta;
  delta.touched.resize(1);
  for (std::size_t i = 1; i < stream.labs.size(); ++i) {
    delta.touched[0] = stream.touched[i - 1];
    verdicts.push_back(verifier.run_delta(stream.labs[i], delta));
  }
  return verdicts;
}

IncrementalResult measure_incremental(const core::Scheme& scheme,
                                      const local::Configuration& cfg,
                                      unsigned t, unsigned threads,
                                      const MutationStream& stream,
                                      std::size_t baseline_checked,
                                      obs::MetricsRegistry& registry) {
  IncrementalResult r;
  r.n = cfg.n();
  r.t = t;
  r.labelings = stream.labs.size();
  r.threads = threads;

  // Both contenders share one warm atlas: geometry is scenario 2's subject,
  // not this one's, so it is built once up front and both phases run
  // steady-state.  Snapshot diffs (AtlasStats::since) bracket the phases for
  // per-phase hit rates — the retired reset_stats could misattribute
  // concurrent traffic to the wrong phase; a diff of two snapshots cannot.
  radius::BatchOptions options;
  options.threads = threads;
  options.atlas = std::make_shared<radius::GeometryAtlas>();
  options.metrics = &registry;
  radius::BatchVerifier full(scheme, cfg, t, options);
  radius::BatchVerifier delta(scheme, cfg, t, options);
  full.run_one(stream.labs.front());  // warm the shared geometry
  const radius::AtlasStats warm = options.atlas->stats();

  std::vector<core::Verdict> full_verdicts;
  {
    const auto start = std::chrono::steady_clock::now();
    full_verdicts = full.run(stream.labs);
    const auto stop = std::chrono::steady_clock::now();
    r.full_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
  }
  const radius::AtlasStats after_full = options.atlas->stats();
  r.full_phase_hit_rate = after_full.since(warm).hit_rate();

  std::vector<core::Verdict> delta_verdicts;
  {
    const auto start = std::chrono::steady_clock::now();
    delta_verdicts = replay_deltas(delta, stream);
    const auto stop = std::chrono::steady_clock::now();
    r.delta_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
  }
  r.delta_phase_hit_rate = options.atlas->stats().since(after_full).hit_rate();
  r.delta_stats = delta.delta_stats();

  const auto count = static_cast<double>(stream.labs.size());
  r.full_per_sec = count / (r.full_ms / 1000.0);
  r.delta_per_sec = count / (r.delta_ms / 1000.0);
  r.speedup = r.full_ms / r.delta_ms;
  r.dirty_fraction =
      r.delta_stats.delta_runs == 0
          ? 0.0
          : static_cast<double>(r.delta_stats.centers_reswept) /
                (static_cast<double>(r.delta_stats.delta_runs) *
                 static_cast<double>(cfg.n()));

  // Verdict identity: delta == full batch for EVERY labeling of the stream,
  // delta at threads {1, 2, hardware} over a prefix (untimed), and the
  // stream head against the naive reference engine.
  bool identical = full_verdicts.size() == delta_verdicts.size();
  for (std::size_t i = 0; identical && i < full_verdicts.size(); ++i)
    identical = same_verdict(full_verdicts[i], delta_verdicts[i]);
  const std::size_t prefix = std::min<std::size_t>(10, stream.labs.size());
  MutationStream head;
  head.labs.assign(stream.labs.begin(),
                   stream.labs.begin() + static_cast<std::ptrdiff_t>(prefix));
  head.touched.assign(
      stream.touched.begin(),
      stream.touched.begin() + static_cast<std::ptrdiff_t>(prefix - 1));
  for (const unsigned check_threads :
       {1u, 2u, util::ThreadPool::hardware_threads()}) {
    radius::BatchOptions check_options;
    check_options.threads = check_threads;
    check_options.atlas = options.atlas;
    radius::BatchVerifier check(scheme, cfg, t, check_options);
    const std::vector<core::Verdict> got = replay_deltas(check, head);
    for (std::size_t i = 0; identical && i < got.size(); ++i)
      identical = same_verdict(got[i], full_verdicts[i]);
  }
  r.baseline_checked = std::min(baseline_checked, stream.labs.size());
  for (std::size_t i = 0; identical && i < r.baseline_checked; ++i)
    identical = same_verdict(
        radius::run_verifier_t_baseline(scheme, cfg, stream.labs[i], t),
        full_verdicts[i]);
  r.verdicts_identical = identical;
  PLS_ASSERT(identical);
  return r;
}

// ---- Scenario 4: the serving tier (skewed sweep + open loop) --------------

/// A deliberately skewed instance: a dense chorded ring on the lowest `core`
/// indices — every core node's radius-t ball spans most of the core, so the
/// static split's first slice carries balls an order of magnitude fatter
/// than the chain interiors' — trailing sparse chains over the rest of
/// [0, n).  The shape fragment-heavy workloads produce and the shape the
/// static contiguous partition handles worst: slice 0 sweeps the whole core
/// while the other slots finish their chain segments and idle.
graph::Graph skewed_core_chain_graph(std::size_t core, std::size_t chains,
                                     std::size_t chain_len) {
  graph::Graph::Builder b;
  const std::size_t n = core + chains * chain_len;
  for (std::size_t v = 0; v < n; ++v)
    b.add_node(static_cast<graph::RawId>(v));
  for (std::size_t v = 0; v < core; ++v)
    b.add_edge(static_cast<graph::NodeIndex>(v),
               static_cast<graph::NodeIndex>((v + 1) % core));
  for (const std::size_t stride : {std::size_t{5}, std::size_t{11}}) {
    for (std::size_t v = 0; v < core; ++v)
      b.add_edge(static_cast<graph::NodeIndex>(v),
                 static_cast<graph::NodeIndex>((v + stride) % core));
  }
  std::size_t next = core;
  for (std::size_t c = 0; c < chains; ++c) {
    auto prev = static_cast<graph::NodeIndex>(c % core);
    for (std::size_t i = 0; i < chain_len; ++i) {
      const auto v = static_cast<graph::NodeIndex>(next++);
      b.add_edge(prev, v);
      prev = v;
    }
  }
  return std::move(b).build();
}

/// Scenario 4's result sheet: the closed-loop scheduler A/B on the skewed
/// and uniform instances, plus the open-loop (arrival-rate-driven) phase.
struct ServingResult {
  std::size_t n = 0;
  std::size_t core = 0;
  unsigned t = 0;
  std::size_t labelings = 0;
  unsigned threads = 1;
  // Closed loop, skewed instance: identical batch under both schedulers.
  double static_ms = 0.0;
  double stealing_ms = 0.0;
  double steal_speedup = 0.0;       ///< static_ms / stealing_ms
  std::uint64_t sweep_chunks = 0;   ///< stealing run, all sweeps
  std::uint64_t sweep_steals = 0;   ///< chunks run off their static home
  double busy_p50_us = 0.0;         ///< per-slot claim-loop busy time
  double busy_p99_us = 0.0;
  // Closed loop, uniform instance: stealing must not regress where the
  // static split was already balanced.
  double uniform_static_ms = 0.0;
  double uniform_stealing_ms = 0.0;
  double uniform_ratio = 0.0;       ///< uniform_static_ms / uniform_stealing_ms
  // Open loop over the skewed instance (stealing sweep): requests arrive on
  // a deterministic schedule; latency includes queueing delay.
  double offered_per_sec = 0.0;
  double sustained_per_sec = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  bool verdicts_identical = false;
};

/// One closed-loop contender: runs the whole batch under `mode` against a
/// shared warm atlas and returns wall-clock ms.
double time_scheduler_ms(const core::Scheme& scheme,
                         const local::Configuration& cfg, unsigned t,
                         unsigned threads, radius::BatchOptions::SweepMode mode,
                         std::span<const core::Labeling> labs,
                         const std::shared_ptr<radius::GeometryAtlas>& atlas,
                         obs::MetricsRegistry* registry,
                         std::vector<core::Verdict>& out) {
  radius::BatchOptions options;
  options.threads = threads;
  options.sweep = mode;
  options.atlas = atlas;
  options.metrics = registry;
  radius::BatchVerifier verifier(scheme, cfg, t, options);
  const auto start = std::chrono::steady_clock::now();
  out = verifier.run(labs);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

ServingResult measure_serving(const core::Scheme& scheme,
                              const local::Configuration& skewed_cfg,
                              std::size_t core,
                              const local::Configuration& uniform_cfg,
                              unsigned t, unsigned threads,
                              std::span<const core::Labeling> skewed_labs,
                              std::span<const core::Labeling> uniform_labs,
                              double arrival_rate,
                              obs::MetricsRegistry& registry) {
  ServingResult r;
  r.n = skewed_cfg.n();
  r.core = core;
  r.t = t;
  r.labelings = skewed_labs.size();
  r.threads = threads;

  // Shared warm atlases per instance: geometry build cost is scenario 2's
  // subject; here both schedulers must sweep the same cached balls.
  auto skewed_atlas = std::make_shared<radius::GeometryAtlas>();
  auto uniform_atlas = std::make_shared<radius::GeometryAtlas>();
  {
    radius::BatchOptions warm;
    warm.threads = threads;
    warm.atlas = skewed_atlas;
    radius::BatchVerifier(scheme, skewed_cfg, t, warm)
        .run_one(skewed_labs[0]);
    warm.atlas = uniform_atlas;
    radius::BatchVerifier(scheme, uniform_cfg, t, warm)
        .run_one(uniform_labs[0]);
  }

  std::vector<core::Verdict> static_v, stealing_v;
  r.static_ms = time_scheduler_ms(scheme, skewed_cfg, t, threads,
                                  radius::BatchOptions::SweepMode::kStatic,
                                  skewed_labs, skewed_atlas, nullptr,
                                  static_v);
  const obs::MetricsSnapshot before = registry.snapshot();
  r.stealing_ms = time_scheduler_ms(scheme, skewed_cfg, t, threads,
                                    radius::BatchOptions::SweepMode::kStealing,
                                    skewed_labs, skewed_atlas, &registry,
                                    stealing_v);
  r.steal_speedup = r.static_ms / r.stealing_ms;
  const obs::MetricsSnapshot stealing_snap = registry.snapshot().since(before);
  r.sweep_chunks = stealing_snap.counters.at("verify.sweep_chunks");
  r.sweep_steals = stealing_snap.counters.at("verify.sweep_steals");
  {
    const obs::HistogramSnapshot& busy =
        stealing_snap.histograms.at("verify.worker_busy_ns");
    r.busy_p50_us = static_cast<double>(busy.quantile(0.5)) / 1e3;
    r.busy_p99_us = static_cast<double>(busy.quantile(0.99)) / 1e3;
  }

  std::vector<core::Verdict> uniform_static_v, uniform_stealing_v;
  r.uniform_static_ms = time_scheduler_ms(
      scheme, uniform_cfg, t, threads,
      radius::BatchOptions::SweepMode::kStatic, uniform_labs, uniform_atlas,
      nullptr, uniform_static_v);
  r.uniform_stealing_ms = time_scheduler_ms(
      scheme, uniform_cfg, t, threads,
      radius::BatchOptions::SweepMode::kStealing, uniform_labs, uniform_atlas,
      nullptr, uniform_stealing_v);
  r.uniform_ratio = r.uniform_static_ms / r.uniform_stealing_ms;

  // Open loop: requests arrive at i / rate on one deterministic schedule
  // (not closed-loop: the next arrival does not wait for the previous
  // completion, so a slow sweep shows up as queueing delay in the NEXT
  // request's latency — the number a serving deployment actually quotes).
  // Default rate: 80% of the measured closed-loop stealing throughput, the
  // sustainable-regime convention.
  const double closed_loop_per_sec =
      static_cast<double>(skewed_labs.size()) / (r.stealing_ms / 1000.0);
  r.offered_per_sec =
      arrival_rate > 0.0 ? arrival_rate : 0.8 * closed_loop_per_sec;
  {
    radius::BatchOptions options;
    options.threads = threads;
    options.sweep = radius::BatchOptions::SweepMode::kStealing;
    options.atlas = skewed_atlas;
    options.metrics = &registry;
    radius::BatchVerifier server(scheme, skewed_cfg, t, options);
    obs::Histogram& latency = registry.histogram("serve.latency_ns");
    const auto open_start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < skewed_labs.size(); ++i) {
      const auto scheduled =
          open_start + std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(
                               static_cast<double>(i) / r.offered_per_sec));
      std::this_thread::sleep_until(scheduled);
      const core::Verdict got = server.run_one(skewed_labs[i]);
      const auto done = std::chrono::steady_clock::now();
      latency.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(done -
                                                               scheduled)
              .count()));
      PLS_ASSERT(same_verdict(got, stealing_v[i]));
    }
    const auto open_stop = std::chrono::steady_clock::now();
    const double window_s =
        std::chrono::duration<double>(open_stop - open_start).count();
    r.sustained_per_sec =
        static_cast<double>(skewed_labs.size()) / window_s;
    const obs::HistogramSnapshot lat_snap = latency.snapshot();
    r.latency_p50_ms = static_cast<double>(lat_snap.quantile(0.5)) / 1e6;
    r.latency_p99_ms = static_cast<double>(lat_snap.quantile(0.99)) / 1e6;
  }

  bool identical = static_v.size() == stealing_v.size() &&
                   uniform_static_v.size() == uniform_stealing_v.size();
  for (std::size_t i = 0; identical && i < static_v.size(); ++i)
    identical = same_verdict(static_v[i], stealing_v[i]);
  for (std::size_t i = 0; identical && i < uniform_static_v.size(); ++i)
    identical = same_verdict(uniform_static_v[i], uniform_stealing_v[i]);
  // And across thread counts on the skewed instance, stealing vs the
  // deterministic static oracle — assignment nondeterminism must never
  // reach the verdict bytes.
  for (const unsigned check_threads :
       {1u, 2u, util::ThreadPool::hardware_threads()}) {
    radius::BatchOptions options;
    options.threads = check_threads;
    options.sweep = radius::BatchOptions::SweepMode::kStealing;
    options.atlas = skewed_atlas;
    radius::BatchVerifier check(scheme, skewed_cfg, t, options);
    const std::vector<core::Verdict> got = check.run(skewed_labs);
    for (std::size_t i = 0; identical && i < got.size(); ++i)
      identical = same_verdict(got[i], static_v[i]);
  }
  r.verdicts_identical = identical;
  PLS_ASSERT(identical);
  return r;
}

// ---- Scenario 5: TinyLFU admission A/B (zipf center popularity) -----------

/// Scenario 5's result sheet: the same zipf-skewed delta stream replayed
/// against a budget-constrained atlas under both admission policies.
struct AdmissionResult {
  std::size_t n = 0;
  unsigned t = 0;
  std::size_t labelings = 0;
  unsigned threads = 1;
  double zipf_s = 0.0;
  std::size_t geometry_bytes = 0;  ///< all blocks resident (unconstrained)
  std::size_t byte_budget = 0;     ///< the constrained A/B budget
  double scan_ms = 0.0;
  double tinylfu_ms = 0.0;
  double scan_per_sec = 0.0;
  double tinylfu_per_sec = 0.0;
  radius::AtlasStats scan;
  radius::AtlasStats tinylfu;
  double hit_ratio = 0.0;  ///< tinylfu hit rate / scan-resistant hit rate
  bool verdicts_identical = false;
};

/// Mutation stream whose touched nodes are zipf-popular: rank r of the
/// sampler maps through a random permutation, so a handful of "hot" nodes —
/// and therefore the geometry blocks their radius-t balls live in — absorb
/// most of the delta traffic while the cold tail trickles.  Exactly the
/// center-popularity skew TinyLFU admission targets.
MutationStream zipf_mutation_stream(const core::Scheme& scheme,
                                    const local::Configuration& cfg,
                                    std::size_t count, double s,
                                    util::Rng& rng) {
  const std::vector<std::uint64_t> perm = rng.permutation(cfg.n());
  const bench::ZipfSampler zipf(cfg.n(), s);
  MutationStream stream;
  stream.labs.reserve(count);
  stream.labs.push_back(scheme.mark(cfg));
  const std::size_t n = cfg.n();
  while (stream.labs.size() < count) {
    core::Labeling next = stream.labs.back();
    const auto v = static_cast<graph::NodeIndex>(perm[zipf.sample(rng)]);
    if (rng.below(2) == 0) {
      next.certs[v] = next.certs[rng.below(n)];
    } else {
      next.certs[v] = local::random_state(rng.below(64), rng);
    }
    stream.labs.push_back(std::move(next));
    stream.touched.push_back(v);
  }
  return stream;
}

AdmissionResult measure_admission(const core::Scheme& scheme,
                                  const local::Configuration& cfg, unsigned t,
                                  unsigned threads,
                                  const MutationStream& stream,
                                  double zipf_s) {
  AdmissionResult r;
  r.n = cfg.n();
  r.t = t;
  r.labelings = stream.labs.size();
  r.threads = threads;
  r.zipf_s = zipf_s;

  // Ground truth on an unconstrained atlas: the seeding full run builds
  // every block, so its residency is the total geometry footprint the
  // budget then squeezes.
  auto full_atlas = std::make_shared<radius::GeometryAtlas>();
  std::vector<core::Verdict> truth;
  {
    radius::BatchOptions options;
    options.threads = threads;
    options.atlas = full_atlas;
    radius::BatchVerifier verifier(scheme, cfg, t, options);
    truth = replay_deltas(verifier, stream);
  }
  r.geometry_bytes = full_atlas->stats().bytes_in_use;
  // A quarter of the geometry fits: one hot node's radius-t ball spans a
  // sizable block range on the grid, so the budget must reward keeping the
  // zipf head resident while staying far too small for the whole sweep.
  r.byte_budget = std::max<std::size_t>(1, r.geometry_bytes / 4);
  // TinyLFU's aging cadence, sized to the cache like W-TinyLFU prescribes
  // (sample period ~ 10x capacity in entries).  The 8192-record default
  // never fires on a stream this size, and an unaged sketch freezes the
  // early hot set: blocks that peaked at estimate 15 an epoch ago veto
  // every newly hot contender, so TinyLFU's edge *decays* as the stream
  // lengthens exactly when it should compound.
  const std::size_t total_blocks = std::max<std::size_t>(1, (cfg.n() + 15) / 16);
  const std::size_t block_bytes =
      std::max<std::size_t>(1, r.geometry_bytes / total_blocks);
  const std::uint64_t sample_period =
      std::max<std::uint64_t>(64, 10 * (r.byte_budget / block_bytes));

  const auto run_policy = [&](radius::Admission admission, double& ms,
                              radius::AtlasStats& stats) {
    radius::AtlasOptions atlas_options;
    atlas_options.byte_budget = r.byte_budget;
    atlas_options.admission = admission;
    atlas_options.sketch_sample_period = sample_period;
    // Finer blocks sharpen the A/B: a cold delta's ball then spans more
    // (smaller) blocks, so the blind every-k-th turnover admits — and
    // churns — proportionally more per scan, while the sketch's veto is
    // per-block and unaffected.
    atlas_options.block_centers = 16;
    radius::BatchOptions options;
    options.threads = threads;
    options.atlas = std::make_shared<radius::GeometryAtlas>(atlas_options);
    radius::BatchVerifier verifier(scheme, cfg, t, options);
    std::vector<core::Verdict> verdicts;
    verdicts.reserve(stream.labs.size());
    // The seeding full sweep is a cyclic scan both policies survive the
    // same way (bypass); its lookups would dilute the A/B, so the reported
    // stats cover the delta phase only (snapshot diff).
    verdicts.push_back(verifier.run_one(stream.labs.front()));
    const radius::AtlasStats warm = options.atlas->stats();
    radius::LabelingDelta delta;
    delta.touched.resize(1);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 1; i < stream.labs.size(); ++i) {
      delta.touched[0] = stream.touched[i - 1];
      verdicts.push_back(verifier.run_delta(stream.labs[i], delta));
    }
    const auto stop = std::chrono::steady_clock::now();
    ms = std::chrono::duration<double, std::milli>(stop - start).count();
    stats = options.atlas->stats().since(warm);
    return verdicts;
  };
  const std::vector<core::Verdict> scan_v =
      run_policy(radius::Admission::kScanResistant, r.scan_ms, r.scan);
  const std::vector<core::Verdict> tinylfu_v =
      run_policy(radius::Admission::kTinyLFU, r.tinylfu_ms, r.tinylfu);

  // Throughput over the timed (delta) phase: deltas per second.
  const auto count = static_cast<double>(stream.labs.size() - 1);
  r.scan_per_sec = count / (r.scan_ms / 1000.0);
  r.tinylfu_per_sec = count / (r.tinylfu_ms / 1000.0);
  r.hit_ratio = r.scan.hit_rate() > 0.0
                    ? r.tinylfu.hit_rate() / r.scan.hit_rate()
                    : 0.0;

  // Admission policy is a performance knob, never a correctness one: both
  // constrained replays must agree with the unconstrained ground truth.
  bool identical = scan_v.size() == truth.size() &&
                   tinylfu_v.size() == truth.size();
  for (std::size_t i = 0; identical && i < truth.size(); ++i)
    identical = same_verdict(scan_v[i], truth[i]) &&
                same_verdict(tinylfu_v[i], truth[i]);
  r.verdicts_identical = identical;
  PLS_ASSERT(identical);
  return r;
}

/// Writes the admission-scenario object (nested under "admission" in the
/// top-level artifact; --admission-out wraps it as its own root).
void emit_admission(obs::JsonWriter& json, const AdmissionResult& r,
                    std::uint64_t seed) {
  json.begin_object();
  json.kv("bench", "verify_admission");
  json.kv("seed", seed);
  json.kv("n", r.n);
  json.kv("t", r.t);
  json.kv("labelings", r.labelings);
  json.kv("threads", r.threads);
  json.kv("zipf_s", r.zipf_s);
  json.kv("geometry_bytes", r.geometry_bytes);
  json.kv("byte_budget", r.byte_budget);
  json.kv("scan_ms", r.scan_ms);
  json.kv("tinylfu_ms", r.tinylfu_ms);
  json.kv("scan_labelings_per_sec", r.scan_per_sec);
  json.kv("tinylfu_labelings_per_sec", r.tinylfu_per_sec);
  json.kv("scan_hit_rate", r.scan.hit_rate());
  json.kv("tinylfu_hit_rate", r.tinylfu.hit_rate());
  json.kv("hit_ratio", r.hit_ratio);
  json.kv("scan_evictions", r.scan.evictions);
  json.kv("scan_bypassed", r.scan.bypassed);
  json.kv("tinylfu_evictions", r.tinylfu.evictions);
  json.kv("tinylfu_sketch_rejects", r.tinylfu.sketch_rejects);
  json.kv("verdicts_identical", r.verdicts_identical);
  json.end_object();
}

double t8_speedup_sequential(const std::vector<Row>& rows) {
  for (const Row& r : rows)
    if (r.t == 8) return r.baseline_ms / r.session_seq_ms;
  return 0.0;
}

/// Writes the incremental-scenario object into an in-progress document (the
/// top-level artifact nests it; --incremental-out wraps it as its own root).
void emit_incremental(obs::JsonWriter& json, const IncrementalResult& r,
                      const obs::MetricsSnapshot& metrics,
                      std::uint64_t seed) {
  json.begin_object();
  json.kv("bench", "verify_incremental");
  json.kv("seed", seed);
  json.kv("n", r.n);
  json.kv("t", r.t);
  json.kv("labelings", r.labelings);
  json.kv("threads", r.threads);
  json.kv("full_ms", r.full_ms);
  json.kv("delta_ms", r.delta_ms);
  json.kv("full_labelings_per_sec", r.full_per_sec);
  json.kv("delta_labelings_per_sec", r.delta_per_sec);
  json.kv("speedup", r.speedup);
  json.kv("delta_runs", r.delta_stats.delta_runs);
  json.kv("certs_reparsed", r.delta_stats.certs_reparsed);
  json.kv("links_incremental", r.delta_stats.links_incremental);
  json.kv("centers_reswept", r.delta_stats.centers_reswept);
  json.kv("verdicts_carried", r.delta_stats.verdicts_carried);
  json.kv("dirty_fraction", r.dirty_fraction);
  json.kv("full_phase_hit_rate", r.full_phase_hit_rate);
  json.kv("delta_phase_hit_rate", r.delta_phase_hit_rate);
  json.kv("baseline_checked", r.baseline_checked);
  json.kv("verdicts_identical", r.verdicts_identical);
  json.key("metrics");
  metrics.write_json(json);
  json.end_object();
}

void emit_batch(obs::JsonWriter& json, const BatchResult& b,
                const obs::MetricsSnapshot& metrics, std::uint64_t seed) {
  json.begin_object();
  json.kv("bench", "verify_batch");
  json.kv("seed", seed);
  json.kv("n", b.n);
  json.kv("t", b.t);
  json.kv("labelings", b.labelings);
  json.kv("threads", b.threads);
  json.kv("rebuild_ms", b.rebuild_ms);
  json.kv("batch_ms", b.batch_ms);
  json.kv("rebuild_labelings_per_sec", b.rebuild_per_sec);
  json.kv("batch_labelings_per_sec", b.batch_per_sec);
  json.kv("speedup", b.speedup);
  json.kv("atlas_hits", b.atlas.hits);
  json.kv("atlas_misses", b.atlas.misses);
  json.kv("atlas_hit_rate", b.atlas.hit_rate());
  json.kv("atlas_evictions", b.atlas.evictions);
  json.kv("atlas_bytes_in_use", b.atlas.bytes_in_use);
  json.kv("atlas_peak_bytes", b.atlas.peak_bytes);
  json.kv("baseline_checked", b.baseline_checked);
  json.kv("verdicts_identical", b.verdicts_identical);
  json.key("metrics");
  metrics.write_json(json);
  json.end_object();
}

/// Writes the serving-scenario object (docs/metrics-schema.md,
/// "Serving artifact"): closed-loop scheduler A/B plus the open-loop phase.
void emit_serving(obs::JsonWriter& json, const ServingResult& r,
                  const obs::MetricsSnapshot& metrics, std::uint64_t seed) {
  json.begin_object();
  json.kv("bench", "verify_serving");
  json.kv("seed", seed);
  json.kv("n", r.n);
  json.kv("core", r.core);
  json.kv("t", r.t);
  json.kv("labelings", r.labelings);
  json.kv("threads", r.threads);
  json.kv("static_ms", r.static_ms);
  json.kv("stealing_ms", r.stealing_ms);
  json.kv("steal_speedup", r.steal_speedup);
  json.kv("sweep_chunks", r.sweep_chunks);
  json.kv("sweep_steals", r.sweep_steals);
  json.kv("busy_p50_us", r.busy_p50_us);
  json.kv("busy_p99_us", r.busy_p99_us);
  json.kv("uniform_static_ms", r.uniform_static_ms);
  json.kv("uniform_stealing_ms", r.uniform_stealing_ms);
  json.kv("uniform_ratio", r.uniform_ratio);
  json.kv("offered_per_sec", r.offered_per_sec);
  json.kv("sustained_per_sec", r.sustained_per_sec);
  json.kv("latency_p50_ms", r.latency_p50_ms);
  json.kv("latency_p99_ms", r.latency_p99_ms);
  json.kv("verdicts_identical", r.verdicts_identical);
  json.key("metrics");
  metrics.write_json(json);
  json.end_object();
}

void emit(std::ostream& out, const std::vector<Row>& rows,
          const BatchResult& batch, const obs::MetricsSnapshot& batch_metrics,
          const IncrementalResult& incremental,
          const obs::MetricsSnapshot& incr_metrics,
          const ServingResult& serving,
          const obs::MetricsSnapshot& serving_metrics,
          const AdmissionResult& admission,
          double disabled_span_ns, std::uint64_t seed) {
  const double t8_speedup_seq = t8_speedup_sequential(rows);
  double t8_speedup_par = 0.0;
  for (const Row& r : rows)
    if (r.t == 8) t8_speedup_par = r.baseline_ms / r.session_par_ms;
  obs::JsonWriter json(out);
  json.begin_object();
  json.kv("bench", "verify_scale");
  json.kv("id_space", kIdSpace);
  json.kv("seed", seed);
  json.kv("t8_speedup_sequential", t8_speedup_seq);
  json.kv("t8_speedup_parallel", t8_speedup_par);
  json.kv("disabled_span_ns", disabled_span_ns);
  json.key("rows");
  json.begin_array();
  for (const Row& r : rows) {
    json.begin_object();
    json.kv("scheme", r.scheme);
    json.kv("n", r.n);
    json.kv("t", r.t);
    json.kv("max_cert_bits", r.max_cert_bits);
    json.kv("avg_cert_bits", r.avg_cert_bits);
    json.kv("baseline_ms", r.baseline_ms);
    json.kv("session_seq_ms", r.session_seq_ms);
    json.kv("session_par_ms", r.session_par_ms);
    json.kv("threads", r.threads);
    json.kv("verdicts_identical", r.verdicts_identical);
    json.end_object();
  }
  json.end_array();
  json.key("batch");
  emit_batch(json, batch, batch_metrics, seed);
  json.key("incremental");
  emit_incremental(json, incremental, incr_metrics, seed);
  json.key("serving");
  emit_serving(json, serving, serving_metrics, seed);
  json.key("admission");
  emit_admission(json, admission, seed);
  json.end_object();
  PLS_ASSERT(json.finished());
}

/// The observability tax when nothing observes: per-iteration cost of one
/// instrumented-but-disabled trace span (a relaxed atomic load, no clock
/// read).  The CI overhead gate bounds this number.
double disabled_span_cost_ns(std::size_t iters) {
  PLS_REQUIRE(!obs::TraceRecorder::enabled());
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    PLS_TRACE_SPAN("overhead.gate");
  }
  const auto stop = std::chrono::steady_clock::now();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count();
  return static_cast<double>(ns) / static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  bench::CliArgs args(argc, argv);
  const bool smoke = args.take_flag("smoke");
  const std::string out_path = args.take_value("out").value_or("");
  const std::string batch_out_path = args.take_value("batch-out").value_or("");
  const std::string incremental_out_path =
      args.take_value("incremental-out").value_or("");
  const std::string trace_out_path = args.take_value("trace-out").value_or("");
  const std::string serving_out_path =
      args.take_value("serving-out").value_or("");
  const std::uint64_t seed = args.take_seed(kDefaultSeed);
  const unsigned threads =
      args.take_unsigned("threads", util::ThreadPool::hardware_threads());
  const unsigned batch_t = args.take_unsigned("t", 8);
  const std::size_t labeling_count =
      args.take_size("labelings", smoke ? 16 : 100);
  const double require_speedup = args.take_double("require-speedup", 0.0);
  const double require_batch_speedup =
      args.take_double("require-batch-speedup", 0.0);
  const double require_incremental_speedup =
      args.take_double("require-incremental-speedup", 0.0);
  const double max_disabled_span_ns =
      args.take_double("max-disabled-span-ns", 0.0);
  const double require_steal_speedup =
      args.take_double("require-steal-speedup", 0.0);
  const double require_uniform_ratio =
      args.take_double("require-uniform-ratio", 0.0);
  const double arrival_rate = args.take_double("arrival-rate", 0.0);
  const std::string admission_out_path =
      args.take_value("admission-out").value_or("");
  const double zipf_s = args.take_double("zipf-s", 1.0);
  const double require_tinylfu_hit_ratio =
      args.take_double("require-tinylfu-hit-ratio", 0.0);
  if (!args.finish("bench_verify_scale [--smoke] [--out FILE] "
                   "[--batch-out FILE] [--incremental-out FILE] "
                   "[--trace-out FILE] [--serving-out FILE] "
                   "[--admission-out FILE] [--seed S] "
                   "[--threads T] [--t T] [--labelings L] "
                   "[--require-speedup X] [--require-batch-speedup X] "
                   "[--require-incremental-speedup X] "
                   "[--max-disabled-span-ns X] [--require-steal-speedup X] "
                   "[--require-uniform-ratio R] [--arrival-rate A] "
                   "[--zipf-s S] [--require-tinylfu-hit-ratio R]"))
    return 2;
  PLS_REQUIRE(batch_t >= 1 && labeling_count >= 1 && threads >= 1);

  const std::size_t n = smoke ? 1024 : 4096;
  util::Rng rng(seed);
  graph::Graph base_graph = graph::random_connected(n, n / 2, rng);
  auto g = std::make_shared<const graph::Graph>(
      graph::relabel_random(base_graph, rng, kIdSpace));

  const schemes::StpLanguage language;
  const schemes::StpScheme stp(language);
  const local::Configuration cfg = language.sample_legal(g, rng);

  std::vector<Row> rows;
  for (const unsigned t : {1u, 2u, 4u, 8u}) {
    if (t == 1) {
      rows.push_back(measure(stp, cfg, 1, threads));
    } else {
      const radius::SpreadScheme spread(stp, t);
      rows.push_back(measure(spread, cfg, t, threads));
    }
    const Row& r = rows.back();
    std::cerr << r.scheme << " n=" << r.n << " t=" << r.t
              << " max_bits=" << r.max_cert_bits
              << " baseline_ms=" << r.baseline_ms
              << " session_seq_ms=" << r.session_seq_ms
              << " session_par_ms=" << r.session_par_ms << "\n";
  }

  // Scenario 2: the adversary-style batch.  Oracle every labeling against
  // the naive engine under --smoke; at full size the naive engine takes
  // ~10 s per labeling, so oracle only the first two (the batch/rebuild/
  // thread-count cross-checks still cover all of them).
  const radius::SpreadScheme batch_spread(stp, batch_t);
  const core::Scheme& batch_scheme =
      batch_t == 1 ? static_cast<const core::Scheme&>(stp)
                   : static_cast<const core::Scheme&>(batch_spread);
  util::Rng batch_rng(seed ^ kBatchSalt);
  const std::vector<core::Labeling> labs =
      candidate_labelings(batch_scheme, cfg, labeling_count, batch_rng);
  obs::MetricsRegistry batch_registry;
  const BatchResult batch =
      measure_batch(batch_scheme, cfg, batch_t, threads, labs,
                    smoke ? labs.size() : 2, batch_registry,
                    !trace_out_path.empty());
  const obs::MetricsSnapshot batch_metrics = batch_registry.snapshot();
  {
    const obs::HistogramSnapshot& sweep =
        batch_metrics.histograms.at("verify.sweep_window_ns");
    const obs::HistogramSnapshot& e2e =
        batch_metrics.histograms.at("verify.e2e_ns");
    std::cerr << "batch n=" << batch.n << " t=" << batch.t
              << " labelings=" << batch.labelings
              << " threads=" << batch.threads
              << " rebuild_ms=" << batch.rebuild_ms
              << " batch_ms=" << batch.batch_ms << " speedup=" << batch.speedup
              << " atlas_hit_rate=" << batch.atlas.hit_rate()
              << " e2e_p50_us=" << static_cast<double>(e2e.quantile(0.5)) / 1e3
              << " e2e_p99_us=" << static_cast<double>(e2e.quantile(0.99)) / 1e3
              << " sweep_p50_us="
              << static_cast<double>(sweep.quantile(0.5)) / 1e3
              << " sweep_p99_us="
              << static_cast<double>(sweep.quantile(0.99)) / 1e3 << "\n";
  }
  if (!trace_out_path.empty()) {
    std::ofstream trace_out(trace_out_path);
    if (!trace_out) {
      std::cerr << "cannot open " << trace_out_path << "\n";
      return 1;
    }
    obs::TraceRecorder::export_chrome_trace(trace_out);
    std::cout << "wrote " << trace_out_path << "\n";
  }

  // Scenario 3: the incremental delta stream.  Always n = 4096 — the dirty
  // fraction (mutated node's ball / n) is what the speedup measures, so a
  // smaller smoke instance would gate a different quantity; --smoke keeps
  // the stream short instead.  The topology is a 64x64 grid: incremental
  // verification is a *locality* play, and the grid is the bounded-growth
  // regime the t-PLS tradeoff targets — |B(v, 8)| <= 145 = 3.5% of n, so
  // re-sweeping only the dirty ball can win big.  (On the random
  // random_connected(n, n/2) instance of scenarios 1-2 the radius-8 ball
  // already covers ~2/3 of the graph — its random-attachment spanning tree
  // has O(log n) depth — and NO delta scheme can beat ~1.5x there; the
  // emitted dirty_fraction makes that boundary explicit.)
  const std::size_t incr_side = 64;
  IncrementalResult incremental;
  obs::MetricsRegistry incr_registry;
  {
    util::Rng incr_rng(seed ^ kIncrementalSalt);
    graph::Graph incr_base = graph::grid(incr_side, incr_side);
    auto incr_g = std::make_shared<const graph::Graph>(
        graph::relabel_random(incr_base, incr_rng, kIdSpace));
    const local::Configuration incr_cfg =
        language.sample_legal(incr_g, incr_rng);
    const radius::SpreadScheme incr_spread(stp, batch_t);
    const core::Scheme& incr_scheme =
        batch_t == 1 ? static_cast<const core::Scheme&>(stp)
                     : static_cast<const core::Scheme&>(incr_spread);
    const MutationStream stream =
        mutation_stream(incr_scheme, incr_cfg, labeling_count, incr_rng);
    incremental = measure_incremental(incr_scheme, incr_cfg, batch_t, threads,
                                      stream, smoke ? 1 : 2, incr_registry);
    const obs::MetricsSnapshot snap = incr_registry.snapshot();
    const obs::HistogramSnapshot& delta_e2e =
        snap.histograms.at("delta.e2e_ns");
    std::cerr << "incremental n=" << incremental.n << " t=" << incremental.t
              << " labelings=" << incremental.labelings
              << " threads=" << incremental.threads
              << " full_ms=" << incremental.full_ms
              << " delta_ms=" << incremental.delta_ms
              << " speedup=" << incremental.speedup
              << " dirty_fraction=" << incremental.dirty_fraction
              << " delta_phase_hit_rate=" << incremental.delta_phase_hit_rate
              << " delta_e2e_p50_us="
              << static_cast<double>(delta_e2e.quantile(0.5)) / 1e3
              << " delta_e2e_p99_us="
              << static_cast<double>(delta_e2e.quantile(0.99)) / 1e3 << "\n";
  }
  const obs::MetricsSnapshot incr_metrics = incr_registry.snapshot();

  // Scenario 4: the serving tier.  The skewed instance is where the static
  // contiguous split demonstrably starves cores — a dense chorded-ring core
  // on the low sixteenth of the index space (fat radius-t balls) plus sparse
  // chains over the rest — so the closed-loop A/B pins the scheduler win,
  // the uniform A/B (scenario 2's random instance, same labelings) pins the
  // no-regression bound, and the open-loop phase reports what a deployment
  // quotes: sustained labelings/sec and p50/p99 latency at a fixed offered
  // rate.  Verdict identity across schedulers and thread counts is asserted
  // inside measure_serving.
  ServingResult serving;
  obs::MetricsRegistry serving_registry;
  {
    const std::size_t serving_core = n / 16;
    const std::size_t serving_chains = 32;
    const std::size_t chain_len = (n - serving_core) / serving_chains;
    util::Rng serving_rng(seed ^ kServingSalt);
    graph::Graph skewed_base =
        skewed_core_chain_graph(serving_core, serving_chains, chain_len);
    auto skewed_g = std::make_shared<const graph::Graph>(
        graph::relabel_random(skewed_base, serving_rng, kIdSpace));
    const local::Configuration skewed_cfg =
        language.sample_legal(skewed_g, serving_rng);
    const std::vector<core::Labeling> skewed_labs = candidate_labelings(
        batch_scheme, skewed_cfg, labeling_count, serving_rng);
    serving = measure_serving(batch_scheme, skewed_cfg, serving_core, cfg,
                              batch_t, threads, skewed_labs, labs,
                              arrival_rate, serving_registry);
    std::cerr << "serving n=" << serving.n << " core=" << serving.core
              << " t=" << serving.t << " labelings=" << serving.labelings
              << " threads=" << serving.threads
              << " static_ms=" << serving.static_ms
              << " stealing_ms=" << serving.stealing_ms
              << " steal_speedup=" << serving.steal_speedup
              << " steals=" << serving.sweep_steals << "/"
              << serving.sweep_chunks
              << " uniform_ratio=" << serving.uniform_ratio
              << " offered_per_sec=" << serving.offered_per_sec
              << " sustained_per_sec=" << serving.sustained_per_sec
              << " latency_p50_ms=" << serving.latency_p50_ms
              << " latency_p99_ms=" << serving.latency_p99_ms << "\n";
  }
  const obs::MetricsSnapshot serving_metrics = serving_registry.snapshot();

  // Scenario 5: admission A/B.  Same bounded-growth grid as scenario 3 (the
  // skew is over *blocks*, so the instance must have many distinct blocks
  // with local balls), a delta stream whose touched nodes are zipf-popular,
  // and an atlas budget holding a sixth of the geometry: kScanResistant's
  // every-k-th turnover admits cold-tail blocks blindly and churns the hot
  // head out; kTinyLFU's sketch vetoes them.  The stream length is fixed
  // (independent of --labelings) so the sketch has traffic to learn from
  // even under --smoke.
  AdmissionResult admission;
  {
    util::Rng adm_rng(seed ^ kAdmissionSalt);
    graph::Graph adm_base = graph::grid(incr_side, incr_side);
    auto adm_g = std::make_shared<const graph::Graph>(
        graph::relabel_random(adm_base, adm_rng, kIdSpace));
    const local::Configuration adm_cfg = language.sample_legal(adm_g, adm_rng);
    // t = 2, not batch_t: admission is a block-traffic property, and a
    // radius-8 ball spans a third of the grid's rows — smearing every
    // node's popularity over dozens of blocks until the two policies see
    // nearly the same key stream.  A t = 2 ball stays within a couple of
    // blocks, so the zipf skew lands on block keys undiluted.
    const unsigned adm_t = 2;
    const radius::SpreadScheme adm_scheme(stp, adm_t);
    const MutationStream adm_stream = zipf_mutation_stream(
        adm_scheme, adm_cfg, smoke ? 48 : 160, zipf_s, adm_rng);
    admission = measure_admission(adm_scheme, adm_cfg, adm_t, threads,
                                  adm_stream, zipf_s);
    std::cerr << "admission n=" << admission.n << " t=" << admission.t
              << " labelings=" << admission.labelings
              << " zipf_s=" << admission.zipf_s
              << " budget=" << admission.byte_budget << "/"
              << admission.geometry_bytes
              << " scan_hit_rate=" << admission.scan.hit_rate()
              << " tinylfu_hit_rate=" << admission.tinylfu.hit_rate()
              << " hit_ratio=" << admission.hit_ratio
              << " sketch_rejects=" << admission.tinylfu.sketch_rejects
              << " scan_per_sec=" << admission.scan_per_sec
              << " tinylfu_per_sec=" << admission.tinylfu_per_sec << "\n";
  }

  const double disabled_span_ns = disabled_span_cost_ns(1u << 20);
  std::cerr << "disabled_span_ns=" << disabled_span_ns << "\n";

  if (out_path.empty()) {
    emit(std::cout, rows, batch, batch_metrics, incremental, incr_metrics,
         serving, serving_metrics, admission, disabled_span_ns, seed);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    emit(out, rows, batch, batch_metrics, incremental, incr_metrics, serving,
         serving_metrics, admission, disabled_span_ns, seed);
    std::cout << "wrote " << out_path << "\n";
  }
  if (!batch_out_path.empty()) {
    std::ofstream out(batch_out_path);
    if (!out) {
      std::cerr << "cannot open " << batch_out_path << "\n";
      return 1;
    }
    obs::JsonWriter json(out);
    emit_batch(json, batch, batch_metrics, seed);
    PLS_ASSERT(json.finished());
    std::cout << "wrote " << batch_out_path << "\n";
  }
  if (!incremental_out_path.empty()) {
    std::ofstream out(incremental_out_path);
    if (!out) {
      std::cerr << "cannot open " << incremental_out_path << "\n";
      return 1;
    }
    obs::JsonWriter json(out);
    emit_incremental(json, incremental, incr_metrics, seed);
    PLS_ASSERT(json.finished());
    std::cout << "wrote " << incremental_out_path << "\n";
  }
  if (!serving_out_path.empty()) {
    std::ofstream out(serving_out_path);
    if (!out) {
      std::cerr << "cannot open " << serving_out_path << "\n";
      return 1;
    }
    obs::JsonWriter json(out);
    emit_serving(json, serving, serving_metrics, seed);
    PLS_ASSERT(json.finished());
    std::cout << "wrote " << serving_out_path << "\n";
  }
  if (!admission_out_path.empty()) {
    std::ofstream out(admission_out_path);
    if (!out) {
      std::cerr << "cannot open " << admission_out_path << "\n";
      return 1;
    }
    obs::JsonWriter json(out);
    emit_admission(json, admission, seed);
    PLS_ASSERT(json.finished());
    std::cout << "wrote " << admission_out_path << "\n";
  }

  if (require_speedup > 0.0) {
    const double speedup = t8_speedup_sequential(rows);
    if (speedup < require_speedup) {
      std::cerr << "FAIL: t=8 sequential speedup " << speedup << " < required "
                << require_speedup << "\n";
      return 1;
    }
    std::cerr << "t=8 sequential speedup " << speedup << " >= required "
              << require_speedup << "\n";
  }
  if (require_batch_speedup > 0.0) {
    if (batch.speedup < require_batch_speedup) {
      std::cerr << "FAIL: batch speedup " << batch.speedup << " < required "
                << require_batch_speedup << "\n";
      return 1;
    }
    std::cerr << "batch speedup " << batch.speedup << " >= required "
              << require_batch_speedup << "\n";
  }
  if (require_incremental_speedup > 0.0) {
    if (incremental.speedup < require_incremental_speedup) {
      std::cerr << "FAIL: incremental speedup " << incremental.speedup
                << " < required " << require_incremental_speedup << "\n";
      return 1;
    }
    std::cerr << "incremental speedup " << incremental.speedup
              << " >= required " << require_incremental_speedup << "\n";
  }
  if (require_steal_speedup > 0.0) {
    if (serving.steal_speedup < require_steal_speedup) {
      std::cerr << "FAIL: steal speedup " << serving.steal_speedup
                << " < required " << require_steal_speedup << "\n";
      return 1;
    }
    std::cerr << "steal speedup " << serving.steal_speedup << " >= required "
              << require_steal_speedup << "\n";
  }
  if (require_uniform_ratio > 0.0) {
    if (serving.uniform_ratio < require_uniform_ratio) {
      std::cerr << "FAIL: uniform static/stealing ratio "
                << serving.uniform_ratio << " < required "
                << require_uniform_ratio << "\n";
      return 1;
    }
    std::cerr << "uniform static/stealing ratio " << serving.uniform_ratio
              << " >= required " << require_uniform_ratio << "\n";
  }
  if (require_tinylfu_hit_ratio > 0.0) {
    if (admission.hit_ratio < require_tinylfu_hit_ratio) {
      std::cerr << "FAIL: tinylfu/scan hit ratio " << admission.hit_ratio
                << " < required " << require_tinylfu_hit_ratio << "\n";
      return 1;
    }
    std::cerr << "tinylfu/scan hit ratio " << admission.hit_ratio
              << " >= required " << require_tinylfu_hit_ratio << "\n";
  }
  if (max_disabled_span_ns > 0.0) {
    if (disabled_span_ns > max_disabled_span_ns) {
      std::cerr << "FAIL: disabled span costs " << disabled_span_ns
                << " ns > allowed " << max_disabled_span_ns << "\n";
      return 1;
    }
    std::cerr << "disabled span " << disabled_span_ns << " ns <= allowed "
              << max_disabled_span_ns << "\n";
  }
  return 0;
}
