// Experiment T1 — proof-size summary (the paper's headline results table).
//
// For every scheme in the catalog, measure the maximum certificate size the
// marker emits on random instances, next to the scheme's declared theoretical
// bound.  Expected shape: agree ~ s; leader/acyclic/stp/stl ~ O(log n);
// mstl ~ O(log^2 n); bipartite 1 bit; coloring 0 bits; all measured values
// below the bound.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pls;
  const auto base = bench::take_seed_only(argc, argv, "bench_proof_sizes");
  if (!base) return 2;
  bench::print_header(
      "T1: proof sizes",
      "max certificate bits (measured over 3 seeds) vs the theory bound");
  bench::echo_seed(*base);

  util::Table table({"scheme", "n", "state bits", "measured bits", "bound",
                     "within bound"});
  const auto catalog = schemes::standard_catalog();
  for (const schemes::SchemeEntry& entry : catalog) {
    for (const std::size_t n : {16u, 64u, 256u, 1024u}) {
      std::size_t measured = 0;
      std::size_t state_bits = 0;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        auto g = bench::graph_for(entry, n, *base ^ seed);
        util::Rng rng(*base ^ (seed * 7));
        const local::Configuration cfg = entry.language->sample_legal(g, rng);
        measured = std::max(measured, entry.scheme->mark(cfg).max_bits());
        state_bits = std::max(state_bits, cfg.max_state_bits());
      }
      const std::size_t bound =
          entry.scheme->proof_size_bound(n, state_bits);
      table.row(entry.label, n, state_bits, measured, bound,
                measured <= bound ? "yes" : "NO");
    }
  }
  table.print(std::cout);
  return 0;
}
