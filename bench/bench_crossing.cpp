// Experiment F3 — lower bounds via the crossing argument.
//
// Three instance families, each spliced across a small cut under a
// certificate bit-budget b:
//   agree  (s = 16-bit values on a path)  — threshold ~ s bits,
//   leader (positions on a ring, strict)  — threshold ~ log n bits,
//   stp    (two orientations of a path, strict) — the Theorem-style
//           two-rejections construction.
// A "fooled pair" is two legal instances whose spliced combination is
// illegal while every node's b-bit view equals an accepting view: *any*
// verifier restricted to b-bit certificates accepts an illegal instance.
// Expected shape: fooled pairs > 0 for b well below the threshold and = 0 at
// full width; the distinct-signature count implies the bit requirement.
#include "bench_common.hpp"

#include "pls/crossing.hpp"
#include "pls/strict_adapter.hpp"
#include "schemes/agree.hpp"
#include "schemes/leader.hpp"
#include "schemes/spanning_tree.hpp"

namespace {

std::vector<bool> first_half(std::size_t n) {
  std::vector<bool> left(n, false);
  for (std::size_t i = 0; i < n / 2; ++i) left[i] = true;
  return left;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pls;
  // The crossing constructions are exhaustive (no RNG); --seed is accepted
  // and echoed anyway so every bench's output names its seed uniformly.
  const auto seed = bench::take_seed_only(argc, argv, "bench_crossing");
  if (!seed) return 2;
  bench::echo_seed(*seed);

  // --- agree ---------------------------------------------------------------
  {
    bench::print_header("F3a: crossing lower bound for agree (s = 16)",
                        "64 values on a 16-path; cut = middle edge");
    const schemes::AgreeLanguage language(16);
    const schemes::AgreeScheme scheme(language);
    auto g = bench::share(graph::path(16));
    std::vector<local::Configuration> configs;
    for (std::uint64_t v = 0; v < 64; ++v) {
      std::vector<local::State> states(16,
                                       language.encode_value(v * 1021 + 3));
      configs.emplace_back(g, std::move(states));
    }
    const core::CrossingFamily family =
        core::make_family(scheme, std::move(configs), first_half(16));

    util::Table table({"mask bits", "pairs", "illegal", "fooled",
                       "distinct signatures"});
    for (const std::size_t b : {0u, 1u, 2u, 4u, 6u, 8u, 12u, 16u}) {
      const core::SweepRow row = core::sweep_mask(scheme, family, b);
      table.row(b, row.pairs_tested, row.illegal_pairs, row.fooled_pairs,
                core::distinct_boundary_signatures(family, b));
    }
    table.print(std::cout);
    std::cout << "64 distinguishable instances => certificates need >= "
                 "log2(64) = 6 bits at the cut; fooled pairs vanish only "
                 "once the mask covers the full value.\n";
  }

  // --- leader --------------------------------------------------------------
  {
    bench::print_header(
        "F3b: crossing lower bound for leader (ring, strict model)",
        "leaders deep in each half of a 32-ring; cut = two ring edges");
    const schemes::LeaderLanguage language;
    const schemes::LeaderScheme inner(language);
    const core::StrictAdapter scheme(inner);
    auto g = bench::share(graph::cycle(32));
    std::vector<local::Configuration> configs;
    for (graph::NodeIndex p = 4; p < 12; ++p)
      configs.push_back(language.make_with_leader(g, p));
    for (graph::NodeIndex p = 20; p < 28; ++p)
      configs.push_back(language.make_with_leader(g, p));
    const core::CrossingFamily family =
        core::make_family(scheme, std::move(configs), first_half(32));

    util::Table table({"mask bits", "pairs", "illegal", "fooled",
                       "distinct signatures"});
    for (const std::size_t b : {0u, 4u, 8u, 16u, 24u, 40u, 80u, 200u}) {
      const core::SweepRow row = core::sweep_mask(scheme, family, b);
      table.row(b, row.pairs_tested, row.illegal_pairs, row.fooled_pairs,
                core::distinct_boundary_signatures(family, b));
    }
    table.print(std::cout);
    std::cout << "Illegal pairs are (left leader, right leader) splices — "
                 "two leaders.  At b = 0 every such pair fools any scheme; "
                 "at full width none does: the root id (Theta(log n) bits) "
                 "is what rescues soundness.\n";
  }

  // --- stp -----------------------------------------------------------------
  {
    bench::print_header(
        "F3c: stp two-orientation splice (the n/2-distance construction)",
        "pointers meet in the middle; only the cut can reject");
    const schemes::StpLanguage language;
    const schemes::StpScheme inner(language);
    const core::StrictAdapter scheme(inner);

    util::Table table({"n", "spliced illegal", "rejections (full certs)",
                       "distance lower bound"});
    for (const std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
      auto g = bench::share(graph::path(n));
      std::vector<local::Configuration> configs;
      configs.push_back(language.make_tree(g, 0));
      configs.push_back(
          language.make_tree(g, static_cast<graph::NodeIndex>(n - 1)));
      const core::CrossingFamily family =
          core::make_family(scheme, std::move(configs), first_half(n));
      const core::PairProbe probe =
          core::probe_pair(scheme, family, 0, 1, 1u << 20);
      table.row(n, probe.spliced_illegal ? "yes" : "no",
                probe.rejections_full, n / 2);
    }
    table.print(std::cout);
    std::cout << "Rejections stay at 2 while the distance to the language "
                 "grows as n/2: detection cannot be spread out under the "
                 "parent-pointer encoding.\n";
  }
  return 0;
}
