#!/usr/bin/env python3
"""prooflab-lint: project-specific invariant lint for the prooflab codebase.

The generic analyzers (Clang thread-safety, clang-tidy, TSan) check locking
and memory errors; this tool enforces the *project* rules that keep verdicts
deterministic and observability off the hot path — invariants the paper's
model demands (a PLS decoder is a deterministic local function of the ball)
and that every PR re-proves only at runtime via differential tests.

Rules (docs/static-analysis.md has the rationale for each):

  R1  hot-path discipline   — no heap allocation, locking, or failpoint
                              evaluation in per-event leaves: function
                              definitions tagged PLS_HOT
                              (src/util/thread_annotations.hpp).
  R2  explicit memory_order — every std::atomic load/store/RMW names its
                              memory_order; no implicit seq_cst, no atomic
                              operator++/--/+=/=.
  R3  deterministic orders  — no iteration over unordered containers in
                              verdict-producing or class-id-interning
                              functions (ordering must come from node ids).
  R4  seeded randomness     — no ambient entropy (rand, random_device,
                              wall/steady clocks) in src/pls, src/radius,
                              src/schemes; randomness flows through seeded
                              util::Rng (the --seed discipline).
  R5  obs one-way           — verdict-producing functions never *write*
                              obs:: state (no spans, timers, counters) and
                              never evaluate failpoints; reads are fine.
                              Neither observability nor fault injection may
                              be able to perturb a verdict.
  R6  include-clean headers — every public header compiles standalone.

The driver consumes compile_commands.json (file list, include dirs, -std)
and prints `file:line: [Rx] message` diagnostics.  `// prooflab-lint:
allow(Rx)` on (or immediately above) a line suppresses that rule there;
inside the enforced root (src/, --enforce-root) the allow budget is zero:
each suppression is itself reported.

The frontend is a dependency-free lexical analyzer (comment/string-aware
tokenizer plus a top-level function extractor); the container image carries
no libclang, and the rules above are deliberately expressible on token
streams so the lint runs identically everywhere the tests run.  R6 shells
out to the configured C++ compiler (--cxx), one -fsyntax-only TU per header.
"""

import argparse
import concurrent.futures
import json
import os
import re
import subprocess
import sys
import tempfile

ALL_RULES = ("R1", "R2", "R3", "R4", "R5", "R6")

ALLOW_RE = re.compile(r"//\s*prooflab-lint:\s*allow\(([^)]*)\)")

# ---------------------------------------------------------------------------
# Lexical frontend
# ---------------------------------------------------------------------------


def strip_comments_and_strings(text):
    """Returns text of identical length/offsets with comment bodies and
    string/char literal contents replaced by spaces (newlines preserved)."""
    out = list(text)
    i, n = 0, len(text)
    CODE, LINE, BLOCK, STR, CHAR, RAW = range(6)
    state = CODE
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == CODE:
            if c == "/" and nxt == "/":
                state = LINE
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                # R"delim( ... )delim"
                m = re.match(r'R"([^()\\ ]*)\(', text[i - 1 : i + 20]) if i >= 1 and text[i - 1] == "R" else None
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = RAW
                else:
                    state = STR
                i += 1
                continue
            if c == "'":
                state = CHAR
                i += 1
                continue
            i += 1
        elif state == LINE:
            if c == "\n":
                state = CODE
            elif c != "\n":
                out[i] = " "
            i += 1
        elif state == BLOCK:
            if c == "*" and nxt == "/":
                out[i] = out[i + 1] = " "
                state = CODE
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
        elif state == STR:
            if c == "\\":
                out[i] = " "
                if i + 1 < n and text[i + 1] != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = CODE
            elif c != "\n":
                out[i] = " "
            i += 1
        elif state == CHAR:
            if c == "\\":
                out[i] = " "
                if i + 1 < n and text[i + 1] != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == "'":
                state = CODE
            elif c != "\n":
                out[i] = " "
            i += 1
        else:  # RAW
            if text.startswith(raw_delim, i):
                for j in range(len(raw_delim) - 1):
                    out[i + j] = " "
                i += len(raw_delim)
                state = CODE
                continue
            if c != "\n":
                out[i] = " "
            i += 1
    return "".join(out)


NAME_RE = re.compile(r"((?:[\w~]+\s*::\s*)*(?:operator\s*[^\s(]{1,3}|[\w~]+))\s*$")
TAIL_OK_RE = re.compile(
    r"^(?:\s|const\b|noexcept\b|override\b|final\b|mutable\b|->\s*[\w:<>,\s*&]+)*$"
)


class Function:
    __slots__ = ("name", "sig", "sig_start", "body_start", "body_end")

    def __init__(self, name, sig, sig_start, body_start, body_end):
        self.name = name  # qualified, e.g. "TraceRecorder::record"
        self.sig = sig  # signature text (return type, attrs, params)
        self.sig_start = sig_start  # offset of signature start
        self.body_start = body_start  # offset of '{'
        self.body_end = body_end  # offset just past '}'


def _match_brace(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def extract_functions(stripped):
    """Top-level function definitions (including class methods and functions
    in namespaces).  Lexical: good enough for the rule set; bodies include
    any lambdas they contain."""
    funcs = []

    def scan(begin, end):
        seg_start = begin
        i = begin
        while i < end:
            c = stripped[i]
            if c in ";}":
                seg_start = i + 1
                i += 1
                continue
            if c != "{":
                i += 1
                continue
            seg = stripped[seg_start:i]
            close = _match_brace(stripped, i)
            if re.search(r"\bnamespace\b", seg) and "(" not in seg:
                scan(i + 1, close - 1)
                seg_start = close
                i = close
                continue
            mclass = re.search(r"\b(class|struct|union)\b", seg)
            if mclass and not re.search(r"\)\s*$", seg.rstrip()):
                scan(i + 1, close - 1)  # methods inside
                seg_start = close
                i = close
                continue
            if re.search(r"\benum\b", seg):
                seg_start = close
                i = close
                continue
            # Function?  After the last ')', only qualifier tokens may remain
            # (a ctor's member-init list also ends with ')').
            rp = seg.rfind(")")
            if rp != -1 and TAIL_OK_RE.match(seg[rp + 1 :]):
                lp = seg.find("(")
                m = NAME_RE.search(seg[:lp]) if lp > 0 else None
                if m and m.group(1) not in ("if", "for", "while", "switch", "catch"):
                    funcs.append(
                        Function(
                            re.sub(r"\s+", "", m.group(1)),
                            seg,
                            seg_start,
                            i,
                            close,
                        )
                    )
                    seg_start = close
                    i = close
                    continue
            # Plain block / brace initializer: skip it.
            seg_start = close
            i = close

    scan(0, len(stripped))
    return funcs


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


# ---------------------------------------------------------------------------
# Findings and suppression
# ---------------------------------------------------------------------------


class FileLint:
    def __init__(self, path, display, text):
        self.path = path
        self.display = display
        self.text = text
        self.stripped = strip_comments_and_strings(text)
        self.lines = text.split("\n")
        self.allows = {}  # line -> set of rules allowed there
        for idx, line in enumerate(self.lines, start=1):
            m = ALLOW_RE.search(line)
            if m:
                rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
                self.allows[idx] = rules
        self.functions = extract_functions(self.stripped)
        self.findings = []  # (line, rule, message)
        self.used_allows = []  # (line, rule)

    def report(self, offset_or_line, rule, message, by_line=False):
        line = offset_or_line if by_line else line_of(self.text, offset_or_line)
        # An allow on the same line or the line above suppresses (and is
        # accounted against the enforce-root budget by the driver).
        for lno in (line, line - 1):
            if rule in self.allows.get(lno, ()):  # suppressed
                self.used_allows.append((lno, rule))
                return
        self.findings.append((line, rule, message))


# ---------------------------------------------------------------------------
# R1 — hot-path discipline
# ---------------------------------------------------------------------------

R1_ALLOC_RE = re.compile(
    r"\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|\baligned_alloc\s*\(|"
    r"\bmake_unique\b|\bmake_shared\b|\bpush_back\s*\(|\bemplace_back\s*\(|"
    r"\bemplace\s*\(|\breserve\s*\(|\bresize\s*\(|\bto_string\s*\("
)
R1_LOCK_RE = re.compile(
    r"\block_guard\b|\bunique_lock\b|\bscoped_lock\b|\bMutexLock\b|"
    r"(?:\.|->)\s*lock\s*\(|(?:\.|->)\s*unlock\s*\(|\btry_lock\b|\bCondVar\b"
)
# A failpoint site takes the registry mutex even when disarmed (and the
# macro's cost moves with the build flag), so hot leaves must stay clean of
# them just like locks; injection belongs at subsystem boundaries.
R1_FAILPOINT_RE = re.compile(
    r"\bPLS_FAILPOINT\b|\bfailpoint\s*::\s*(?:evaluate|draw)\b"
)


def run_r1(fl):
    for fn in fl.functions:
        if "PLS_HOT" not in fn.sig:
            continue
        body = fl.stripped[fn.body_start : fn.body_end]
        for regex, what in (
            (R1_ALLOC_RE, "heap allocation"),
            (R1_LOCK_RE, "locking"),
            (R1_FAILPOINT_RE, "fault injection"),
        ):
            for m in regex.finditer(body):
                fl.report(
                    fn.body_start + m.start(),
                    "R1",
                    f"{what} ('{m.group(0).strip()}') inside PLS_HOT function "
                    f"'{fn.name}' — per-event leaves must be allocation- and "
                    "lock-free",
                )


# ---------------------------------------------------------------------------
# R2 — explicit memory_order on every atomic access
# ---------------------------------------------------------------------------

R2_CALL_RE = re.compile(
    r"[.>]\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong|test_and_set|"
    r"clear|wait)\s*\("
)
R2_METHODS_NEEDING_ORDER = {
    "load",
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange_weak",
    "compare_exchange_strong",
}
ATOMIC_DECL_RE = re.compile(
    r"\bstd\s*::\s*atomic(?:_bool|_int|_uint|_size_t|_flag)?\s*(?:<[^;{}()]*>)?\s+(\w+)"
)


def _balanced_args(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_pos + 1 : i]
    return text[open_pos + 1 :]


def run_r2(fl):
    s = fl.stripped
    atomics = set(ATOMIC_DECL_RE.findall(s))
    atomic_decl_lines = {
        line_of(fl.text, m.start()) for m in ATOMIC_DECL_RE.finditer(s)
    }
    for m in R2_CALL_RE.finditer(s):
        method = m.group(1)
        if method not in R2_METHODS_NEEDING_ORDER:
            continue
        args = _balanced_args(s, m.end() - 1)
        if "memory_order" in args:
            continue
        # Only flag when the receiver looks atomic: a declared atomic name,
        # an indexed/array receiver of one, or any receiver when the file
        # declares atomics at all and the method is atomic-specific.
        recv = s[max(0, m.start() - 64) : m.start()]
        recv_id = re.search(r"(\w+)\s*(?:\[[^\]]*\]\s*)?$", recv)
        atomic_specific = method.startswith(("fetch_", "compare_exchange"))
        if not (
            atomic_specific
            or (recv_id and recv_id.group(1) in atomics)
        ):
            continue
        fl.report(
            m.start(),
            "R2",
            f"atomic .{method}() without an explicit memory_order "
            "(implicit seq_cst must be spelled out and justified)",
        )
    # Operator forms on declared atomics: ++, --, +=, -=, |=, &=, ^=, and
    # plain assignment (all implicit seq_cst).
    for name in atomics:
        op_re = re.compile(
            r"(?:\+\+|--)\s*" + re.escape(name) + r"\b|"
            r"\b" + re.escape(name) + r"\s*(?:\+\+|--|(?:[-+|&^]|<<|>>)?=(?!=))"
        )
        for m in op_re.finditer(s):
            line = line_of(fl.text, m.start())
            if line in atomic_decl_lines:
                continue  # declaration initializer, not an atomic RMW
            # A local/member *declaration* of the same name (e.g.
            # `const std::uint64_t recorded = ...`) is not an atomic access:
            # skip when a declarator type immediately precedes the name.
            # `obj->name = x` (prev is '->') is a real member write and stays.
            before = s[: m.start()].rstrip()
            if before and (before[-1].isalnum() or before[-1] == "_"):
                continue
            if before.endswith(">") and not before.endswith("->"):
                continue  # template close of the declarator's type
            fl.report(
                m.start(),
                "R2",
                f"operator access to std::atomic '{name}' (implicit seq_cst); "
                "use an explicit .load/.store/.fetch_* with a memory_order",
            )


# ---------------------------------------------------------------------------
# R3 / R5 — verdict-producing function classification
# ---------------------------------------------------------------------------

# A function is verdict-producing (R5; decoder set) when its unqualified name
# starts with verify/decode or is parse_cert; R3 additionally covers the
# class-id interning/link functions, whose outputs feed verdict comparisons.
DECODER_NAME_RE = re.compile(r"(?:^|::)(verify\w*|decode\w*|parse_cert)$")
LINKER_NAME_RE = re.compile(r"(?:^|::)(intern\w*|(?:re)?link\w*)$")
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>[\s&]*(\w+)\s*[;({=,)]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")


def _unordered_names(stripped):
    return set(UNORDERED_DECL_RE.findall(stripped))


def run_r3(fl):
    names = _unordered_names(fl.stripped)
    if not names:
        return
    for fn in fl.functions:
        base = fn.name
        if not (DECODER_NAME_RE.search(base) or LINKER_NAME_RE.search(base)):
            continue
        body = fl.stripped[fn.body_start : fn.body_end]
        for m in RANGE_FOR_RE.finditer(body):
            args = _balanced_args(body, m.end() - 1)
            if ":" not in args:
                continue
            target = args.rsplit(":", 1)[1].strip()
            tgt_id = re.search(r"(\w+)\s*$", target)
            if tgt_id and tgt_id.group(1) in names:
                fl.report(
                    fn.body_start + m.start(),
                    "R3",
                    f"iteration over unordered container '{tgt_id.group(1)}' in "
                    f"verdict/class-id function '{fn.name}' — hash order is not "
                    "deterministic; order by node id instead",
                )
        for name in names:
            it_re = re.compile(r"\b" + re.escape(name) + r"\s*\.\s*(?:begin|cbegin)\s*\(")
            for m in it_re.finditer(body):
                fl.report(
                    fn.body_start + m.start(),
                    "R3",
                    f"iterator over unordered container '{name}' in verdict/"
                    f"class-id function '{fn.name}' — hash order is not "
                    "deterministic; order by node id instead",
                )


# ---------------------------------------------------------------------------
# R4 — seeded randomness only in verify paths
# ---------------------------------------------------------------------------

R4_RE = re.compile(
    r"\brand\s*\(|\bsrand\s*\(|\brandom_device\b|\btime\s*\(\s*(?:nullptr|NULL|0)?\s*\)|"
    r"\bsteady_clock\b|\bsystem_clock\b|\bhigh_resolution_clock\b|\bclock\s*\(\s*\)"
)


def run_r4(fl, scopes):
    norm = fl.display.replace(os.sep, "/")
    if scopes and not any(scope in norm for scope in scopes):
        return
    for m in R4_RE.finditer(fl.stripped):
        fl.report(
            m.start(),
            "R4",
            f"ambient entropy/clock '{m.group(0).strip()}' in a verify path — "
            "all randomness flows through seeded util::Rng (--seed discipline), "
            "clocks belong to obs/bench layers",
        )


# ---------------------------------------------------------------------------
# R5 — obs:: written (or failpoints evaluated) from verdict-producing
# functions
# ---------------------------------------------------------------------------

R5_WRITE_RE = re.compile(
    r"\bPLS_FAILPOINT\b|\bfailpoint\s*::\s*(?:evaluate|draw)\b|"
    r"\bPLS_TRACE_SPAN\b|\bTraceSpan\b|\bScopedTimer\b|\bset_gauge\s*\(|"
    r"\babsorb\s*\(|\bTraceRecorder\s*::\s*(?:enable|disable|record)\b|"
    r"\bobs\s*::\s*(?!TraceRecorder\s*::\s*enabled|MetricsSnapshot|"
    r"HistogramSnapshot|Counter\b|Histogram\b|MetricsRegistry\b|JsonWriter)\w+"
)


def run_r5(fl):
    for fn in fl.functions:
        if not DECODER_NAME_RE.search(fn.name):
            continue
        body = fl.stripped[fn.body_start : fn.body_end]
        for m in R5_WRITE_RE.finditer(body):
            fl.report(
                fn.body_start + m.start(),
                "R5",
                f"side effect '{m.group(0).strip()}' inside verdict-producing "
                f"function '{fn.name}' — decoders may read obs state but never "
                "mutate it or evaluate failpoints (nothing that can perturb a "
                "verdict belongs in a decoder)",
            )


# ---------------------------------------------------------------------------
# R6 — include-clean public headers
# ---------------------------------------------------------------------------


def run_r6(headers, include_dirs, cxx, std, extra_defs, results_out):
    def check(header):
        rel = header["rel"]
        with tempfile.NamedTemporaryFile(
            "w", suffix=".cpp", prefix="prooflab_lint_r6_", delete=False
        ) as tu:
            tu.write(f'#include "{rel}"\n')
            tu_path = tu.name
        cmd = [cxx, f"-std={std}", "-fsyntax-only", "-Wno-pragma-once-outside-header"]
        cmd += [f"-I{d}" for d in include_dirs]
        cmd += extra_defs + [tu_path]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
        finally:
            os.unlink(tu_path)
        if proc.returncode != 0:
            first = next(
                (l for l in proc.stderr.splitlines() if "error" in l), proc.stderr[:200]
            )
            return (header["display"], 1, "R6", f"header does not compile standalone: {first}")
        return None

    with concurrent.futures.ThreadPoolExecutor(max_workers=os.cpu_count()) as ex:
        for res in ex.map(check, headers):
            if res is not None:
                results_out.append(res)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def parse_args(argv):
    ap = argparse.ArgumentParser(
        prog="prooflab-lint", description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("files", nargs="*", help="explicit files to lint (else: src root)")
    ap.add_argument("--compile-commands", help="compile_commands.json (include dirs, -std, file list)")
    ap.add_argument("--src-root", help="lint every .hpp/.cpp under this directory")
    ap.add_argument("--rules", default=",".join(ALL_RULES), help="comma list, default all")
    ap.add_argument("--cxx", default=os.environ.get("CXX", "c++"), help="compiler for R6")
    ap.add_argument("--std", default="c++20")
    ap.add_argument("-I", "--include-dir", action="append", default=[], dest="include_dirs")
    ap.add_argument(
        "--enforce-root",
        default="src",
        help="path fragment under which the allow() budget applies (default: src)",
    )
    ap.add_argument(
        "--allow-budget",
        type=int,
        default=0,
        help="allowed number of allow() suppressions under --enforce-root (default 0)",
    )
    ap.add_argument(
        "--r4-scope",
        default="src/pls,src/radius,src/schemes",
        help="comma list of path fragments R4 applies to; empty = everywhere",
    )
    ap.add_argument("--list-rules", action="store_true")
    return ap.parse_args(argv)


def collect_files(args):
    files = []
    seen = set()

    def add(path):
        ap_ = os.path.abspath(path)
        if ap_ not in seen and os.path.isfile(ap_):
            seen.add(ap_)
            files.append(ap_)

    for f in args.files:
        add(f)
    roots = []
    if args.src_root:
        roots.append(args.src_root)
    if args.compile_commands and not files and not roots:
        with open(args.compile_commands) as fh:
            for entry in json.load(fh):
                f = entry["file"]
                if not os.path.isabs(f):
                    f = os.path.join(entry["directory"], f)
                add(f)
    for root in roots:
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                    add(os.path.join(dirpath, name))
    return files


def compile_flags_from_db(args):
    include_dirs = list(args.include_dirs)
    std = args.std
    defs = []
    if args.compile_commands and os.path.isfile(args.compile_commands):
        try:
            with open(args.compile_commands) as fh:
                db = json.load(fh)
            if db:
                cmd = db[0].get("command") or " ".join(db[0].get("arguments", []))
                for m in re.finditer(r"-I\s*(\S+)", cmd):
                    include_dirs.append(m.group(1))
                for m in re.finditer(r"-isystem\s*(\S+)", cmd):
                    include_dirs.append(m.group(1))
                m = re.search(r"-std=(\S+)", cmd)
                if m:
                    std = m.group(1)
                defs = re.findall(r"(-D\S+)", cmd)
        except (OSError, ValueError, KeyError):
            pass
    return include_dirs, std, defs


def main(argv=None):
    args = parse_args(argv)
    if args.list_rules:
        for r in ALL_RULES:
            print(r)
        return 0
    rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    unknown = [r for r in rules if r not in ALL_RULES]
    if unknown:
        print(f"prooflab-lint: unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    files = collect_files(args)
    if not files:
        print("prooflab-lint: no input files", file=sys.stderr)
        return 2
    r4_scopes = [s for s in args.r4_scope.split(",") if s]
    cwd = os.getcwd()

    all_findings = []  # (display, line, rule, message)
    headers = []
    enforce_allow_count = 0
    enforce_allow_sites = []

    for path in files:
        display = os.path.relpath(path, cwd)
        if display.startswith(".."):
            display = path
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                text = fh.read()
        except OSError as e:
            print(f"prooflab-lint: cannot read {display}: {e}", file=sys.stderr)
            return 2
        fl = FileLint(path, display, text)
        if "R1" in rules:
            run_r1(fl)
        if "R2" in rules:
            run_r2(fl)
        if "R3" in rules:
            run_r3(fl)
        if "R4" in rules:
            run_r4(fl, r4_scopes)
        if "R5" in rules:
            run_r5(fl)
        for line, rule, msg in fl.findings:
            all_findings.append((fl.display, line, rule, msg))
        norm = fl.display.replace(os.sep, "/")
        if args.enforce_root and (
            norm.startswith(args.enforce_root.rstrip("/") + "/")
            or f"/{args.enforce_root.strip('/')}/" in norm
        ):
            for lno, rule in fl.used_allows:
                enforce_allow_count += 1
                enforce_allow_sites.append((fl.display, lno, rule))
        if "R6" in rules and path.endswith((".hpp", ".h")):
            # The include path is header-relative to some -I root; compute
            # against the deepest matching include dir, else the src root.
            headers.append({"path": path, "display": fl.display, "rel": None})

    if "R6" in rules and headers:
        include_dirs, std, defs = compile_flags_from_db(args)
        if args.src_root and os.path.abspath(args.src_root) not in [
            os.path.abspath(d) for d in include_dirs
        ]:
            include_dirs.append(args.src_root)
        for h in headers:
            rel = None
            for d in sorted(include_dirs, key=len, reverse=True):
                da = os.path.abspath(d)
                if h["path"].startswith(da + os.sep):
                    rel = os.path.relpath(h["path"], da)
                    break
            h["rel"] = rel if rel is not None else h["path"]
        r6_results = []
        run_r6(headers, include_dirs, args.cxx, std, defs, r6_results)
        all_findings.extend(r6_results)

    over_budget = max(0, enforce_allow_count - args.allow_budget)
    if over_budget:
        for display, lno, rule in enforce_allow_sites[-over_budget:]:
            all_findings.append(
                (
                    display,
                    lno,
                    rule,
                    f"allow({rule}) suppression under {args.enforce_root}/ exceeds "
                    f"the budget ({args.allow_budget}) — fix the code or move it "
                    "out of the enforced root",
                )
            )

    all_findings.sort(key=lambda f: (f[0], f[1]))
    for display, line, rule, msg in all_findings:
        print(f"{display}:{line}: [{rule}] {msg}")
    if all_findings:
        print(f"prooflab-lint: {len(all_findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
