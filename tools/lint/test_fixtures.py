#!/usr/bin/env python3
"""Golden-fixture tests for prooflab-lint.

Proves every rule is *live*: each `*_bad` fixture must produce exactly the
expected findings for exactly its rule, and each `*_good` fixture — the
sanctioned way to write the same code — must lint clean.  A rule that
stops firing on its bad fixture (after a lint refactor, say) fails here
before it silently stops protecting src/.

Run:  python3 tools/lint/test_fixtures.py [--cxx g++]
"""

import argparse
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "prooflab_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

# (fixture, rule, expected finding count).  Bad fixtures state how many
# distinct violations they stage; good fixtures expect zero.
CASES = [
    ("r1_bad.cpp", "R1", 2),
    ("r1_good.cpp", "R1", 0),
    ("r2_bad.cpp", "R2", 3),
    ("r2_good.cpp", "R2", 0),
    ("r3_bad.cpp", "R3", 1),
    ("r3_good.cpp", "R3", 0),
    ("r4_bad.cpp", "R4", 2),
    ("r4_good.cpp", "R4", 0),
    ("r5_bad.cpp", "R5", 1),
    ("r5_good.cpp", "R5", 0),
    ("r6_bad.hpp", "R6", 1),
    ("r6_good.hpp", "R6", 0),
    # Failpoint discipline rides on R1 (hot leaves) and R5 (decoders); one
    # staged violation of each in the bad fixture, the sanctioned boundary
    # placement in the good one.
    ("r_failpoint_bad.cpp", "R1", 1),
    ("r_failpoint_bad.cpp", "R5", 1),
    ("r_failpoint_good.cpp", "R1", 0),
    ("r_failpoint_good.cpp", "R5", 0),
]


def run_lint(args):
    return subprocess.run(
        [sys.executable, LINT] + args,
        capture_output=True,
        text=True,
        cwd=HERE,
    )


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--cxx", default=os.environ.get("CXX", "c++"))
    opts = ap.parse_args()

    failures = []

    def check(label, ok, detail=""):
        status = "ok" if ok else "FAIL"
        print(f"[{status}] {label}")
        if not ok:
            failures.append(f"{label}\n{detail}")

    for fixture, rule, expected in CASES:
        path = os.path.join("fixtures", fixture)
        args = [path, "--rules", rule, "--cxx", opts.cxx, "-I", "fixtures"]
        if rule == "R4":
            args += ["--r4-scope", ""]  # fixtures live outside src/pls etc.
        proc = run_lint(args)
        findings = [l for l in proc.stdout.splitlines() if f"[{rule}]" in l]
        stray = [
            l
            for l in proc.stdout.splitlines()
            if l.strip() and f"[{rule}]" not in l
        ]
        ok = (
            len(findings) == expected
            and not stray
            and proc.returncode == (1 if expected else 0)
        )
        check(
            f"{fixture}: {rule} x{expected}",
            ok,
            f"exit={proc.returncode}\nstdout:\n{proc.stdout}stderr:\n{proc.stderr}",
        )

    # allow() outside the enforced root suppresses the finding entirely.
    proc = run_lint(
        [
            os.path.join("fixtures", "r_allow.cpp"),
            "--rules",
            "R4",
            "--r4-scope",
            "",
        ]
    )
    check(
        "r_allow.cpp: allow(R4) suppresses outside enforce-root",
        proc.returncode == 0 and not proc.stdout.strip(),
        f"exit={proc.returncode}\nstdout:\n{proc.stdout}",
    )

    # The same file under the enforced root blows the zero allow budget: the
    # suppression itself becomes the finding.
    proc = run_lint(
        [
            os.path.join("fixtures", "r_allow.cpp"),
            "--rules",
            "R4",
            "--r4-scope",
            "",
            "--enforce-root",
            "fixtures",
        ]
    )
    check(
        "r_allow.cpp: allow(R4) counted against zero budget under enforce-root",
        proc.returncode == 1 and "budget" in proc.stdout,
        f"exit={proc.returncode}\nstdout:\n{proc.stdout}",
    )

    if failures:
        print(f"\n{len(failures)} fixture check(s) failed:", file=sys.stderr)
        for f in failures:
            print(f"--- {f}", file=sys.stderr)
        return 1
    print(f"\nall {len(CASES) + 2} fixture checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
