// Failpoint golden fixture (good): the same probe placed where it belongs —
// a cold subsystem-boundary function that is neither PLS_HOT nor
// verdict-producing.  The hot leaf and the decoder stay clean, so the
// injected fault can only ever fail a request, never bend a served verdict.
#include <cstdint>

#define PLS_HOT __attribute__((hot))
#define PLS_FAILPOINT(site) \
  do {                      \
  } while (false)

struct Verdict {
  bool ok;
};

PLS_HOT void hot_leaf(std::uint32_t v) { (void)v; }

void* build_block(std::uint32_t radius) {
  PLS_FAILPOINT("radius.atlas.build");  // boundary: build site, not a leaf
  return radius == 0 ? nullptr : nullptr;
}

Verdict verify_center(std::uint32_t node) { return Verdict{node != 0}; }
