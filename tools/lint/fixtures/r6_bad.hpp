// R6 golden fixture (bad): uses std::vector without including <vector>, so
// the header only compiles when its includer happens to pull that in first.
#pragma once

inline std::vector<int> make_empty() { return {}; }
