// Failpoint golden fixture (bad): fault injection evaluated in a PLS_HOT
// per-event leaf (R1) and inside a verdict-producing decoder (R5).  Run
// once per rule; each must fire exactly once.
#include <cstdint>

#define PLS_HOT __attribute__((hot))
#define PLS_FAILPOINT(site) \
  do {                      \
  } while (false)

namespace util::failpoint {
inline void evaluate(const char*) {}
}  // namespace util::failpoint

struct Verdict {
  bool ok;
};

PLS_HOT void hot_leaf(std::uint32_t v) {
  PLS_FAILPOINT("hot.leaf");  // fault injection in a per-event leaf
  (void)v;
}

Verdict verify_center(std::uint32_t node) {
  util::failpoint::evaluate("verify.center");  // failpoint in a decoder
  return Verdict{node != 0};
}
