// R3 golden fixture (good): the verdict path iterates a node-id-ordered
// vector; a non-verdict exporter may iterate hash containers.
#include <cstdint>
#include <unordered_map>
#include <vector>

struct Verdict {
  bool ok;
};

Verdict verify_ball(const std::vector<int>& classes_by_node) {
  int acc = 0;
  for (int cls : classes_by_node) acc ^= cls;
  return Verdict{acc == 0};
}

int export_stats(const std::unordered_map<std::uint32_t, int>& m) {
  int acc = 0;
  for (const auto& [node, cls] : m) acc += cls + static_cast<int>(node);
  return acc;  // order-insensitive aggregate, not a verdict
}
