// Suppression fixture: the allow() directive silences R4 here (outside the
// enforced root); the same file linted with --enforce-root pointing at this
// directory must report the suppression itself (budget zero).
#include <cstdlib>

unsigned seeded_elsewhere() {
  // prooflab-lint: allow(R4)
  return static_cast<unsigned>(rand());
}
