// R5 golden fixture (bad): a verdict-producing function opens a trace span
// — observability written from inside a decoder.
#include <cstdint>

#define PLS_TRACE_SPAN(...) \
  do {                      \
  } while (false)

struct Verdict {
  bool ok;
};

Verdict verify_center(std::uint32_t node) {
  PLS_TRACE_SPAN("verify.center", node);  // obs write inside a decoder
  return Verdict{node != 0};
}
