// R6 golden fixture (good): self-contained header.
#pragma once

#include <vector>

inline std::vector<int> make_empty() { return {}; }
