// R4 golden fixture (bad): ambient entropy and a wall clock in what would
// be a verify path — both must fire.
#include <chrono>
#include <cstdlib>

unsigned sample_nonce() {
  const auto tick = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<unsigned>(rand()) ^ static_cast<unsigned>(tick.count());
}
