// R4 golden fixture (good): randomness flows through a seeded engine that
// the caller constructs; the verify path reads no clock.
#include <cstdint>

struct Rng {
  std::uint64_t state;
  std::uint64_t next() { return state = state * 6364136223846793005u + 1u; }
};

std::uint64_t sample_nonce(Rng& rng) { return rng.next(); }
