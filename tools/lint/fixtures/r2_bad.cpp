// R2 golden fixture (bad): three implicit-seq_cst atomic accesses — an
// operator RMW, a bare store, and a bare load.
#include <atomic>

std::atomic<int> g_ready{0};
std::atomic<unsigned> g_hits{0};

int implicit_seq_cst() {
  g_hits++;          // operator RMW, implicit seq_cst
  g_ready.store(1);  // store without memory_order
  return g_ready.load();
}
