// R3 golden fixture (bad): a verdict-producing function iterating an
// unordered container — hash order would feed the verdict.
#include <cstdint>
#include <unordered_map>

struct Verdict {
  bool ok;
};

Verdict verify_ball(const std::unordered_map<std::uint32_t, int>& classes) {
  int acc = 0;
  for (const auto& [node, cls] : classes) acc ^= cls + static_cast<int>(node);
  return Verdict{acc == 0};
}
