// R5 golden fixture (good): the driver spans around the decoder call; the
// decoder itself stays pure.
#include <cstdint>

#define PLS_TRACE_SPAN(...) \
  do {                      \
  } while (false)

struct Verdict {
  bool ok;
};

Verdict verify_center(std::uint32_t node) { return Verdict{node != 0}; }

bool sweep_driver(std::uint32_t node) {
  PLS_TRACE_SPAN("sweep.center", node);  // drivers may trace
  return verify_center(node).ok;
}
