// R2 golden fixture (good): every atomic access names its order; a
// non-atomic type with load/store methods must not trip the rule.
#include <atomic>

struct Codec {
  int load(int reg) { return reg; }
  void store(int reg, int v) { (void)reg, (void)v; }
};

std::atomic<int> g_ready{0};

int explicit_orders(Codec& c) {
  g_ready.store(1, std::memory_order_release);
  c.store(0, 1);  // not an atomic
  return g_ready.load(std::memory_order_acquire) + c.load(2);
}
