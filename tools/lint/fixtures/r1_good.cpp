// R1 golden fixture (good): the hot leaf is one relaxed fetch_add; the
// untagged driver may allocate and lock freely.
#include <atomic>
#include <mutex>
#include <vector>

#define PLS_HOT __attribute__((hot))

std::atomic<unsigned long> g_count{0};
std::mutex g_mu;
std::vector<int> g_batches;

PLS_HOT void hot_leaf(unsigned long v) {
  g_count.fetch_add(v, std::memory_order_relaxed);
}

void cold_driver(int batch) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_batches.push_back(batch);
}
