// R1 golden fixture (bad): a PLS_HOT per-event leaf that allocates and
// locks.  Both must fire.
#include <mutex>
#include <vector>

#define PLS_HOT __attribute__((hot))

std::mutex g_mu;
std::vector<int> g_events;

PLS_HOT void hot_leaf(int v) {
  std::lock_guard<std::mutex> lock(g_mu);  // locking in a hot leaf
  g_events.push_back(v);                   // allocation in a hot leaf
}
