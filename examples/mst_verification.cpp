// Distributed MST verification — the O(log^2 n) Borůvka-layered scheme.
//
// Certifies the true MST, then shows two failure modes being caught:
// a near-MST (one edge swapped) and a disconnected claim.
#include <iostream>
#include <memory>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/mst.hpp"
#include "pls/adversary.hpp"
#include "schemes/mst.hpp"

int main() {
  using namespace pls;
  util::Rng rng(7);

  auto g = std::make_shared<const graph::Graph>(graph::reweight_random(
      graph::random_connected(32, 24, rng), rng));
  std::cout << "network: " << g->describe() << "\n";

  const schemes::MstLanguage language;
  const schemes::MstScheme scheme(language);

  // Certify the unique MST.
  const local::Configuration mst = language.sample_legal(g, rng);
  const core::Labeling certs = scheme.mark(mst);
  std::cout << "MST weight: "
            << graph::total_weight(*g, graph::kruskal(*g)) << "\n";
  std::cout << "Borůvka phase records: " << scheme.phase_records(mst)
            << ", certificate size: " << certs.max_bits() << " bits (bound "
            << scheme.proof_size_bound(g->n(), mst.max_state_bits()) << ")\n";
  std::cout << "all nodes accept the true MST: " << std::boolalpha
            << core::run_verifier(scheme, mst, certs).all_accept() << "\n\n";

  // Failure mode 1: swap an MST edge for a non-MST edge (still a spanning
  // tree, but not minimal).
  std::vector<bool> mask(g->m(), false);
  for (const graph::EdgeIndex e : graph::kruskal(*g)) mask[e] = true;
  for (graph::EdgeIndex e = 0; e < g->m(); ++e) {
    if (mask[e]) continue;
    for (graph::EdgeIndex f = 0; f < g->m(); ++f) {
      if (!mask[f] || f == e) continue;
      std::vector<bool> swapped = mask;
      swapped[e] = true;
      swapped[f] = false;
      if (!graph::is_spanning_tree(*g, swapped)) continue;
      const local::Configuration claim = language.make_from_mask(g, swapped);
      const core::AttackReport report = core::attack(scheme, claim, rng);
      std::cout << "non-minimal spanning tree (swapped one edge): adversary's "
                   "best outcome = "
                << report.min_rejections << " rejection(s)\n";
      goto next;
    }
  }
next:

  // Failure mode 2: drop an MST edge (disconnected claim).
  {
    std::vector<bool> broken = mask;
    for (graph::EdgeIndex e = 0; e < g->m(); ++e)
      if (broken[e]) {
        broken[e] = false;
        break;
      }
    const local::Configuration claim = language.make_from_mask(g, broken);
    const core::AttackReport report = core::attack(scheme, claim, rng);
    std::cout << "disconnected tree claim: adversary's best outcome = "
              << report.min_rejections << " rejection(s)\n";
  }
  return 0;
}
