// Lower-bound probe — the crossing argument, executable.
//
// Splices two legal labeled instances of `agree` across the middle edge of a
// path under a certificate bit budget b.  When the budget is too small,
// certificate prefixes collide, every node's view matches an accepting view,
// and ANY b-bit verifier is fooled — the paper's Omega(s) argument for
// agreement, run as code.
#include <iostream>
#include <memory>

#include "graph/generators.hpp"
#include "pls/crossing.hpp"
#include "schemes/agree.hpp"

int main() {
  using namespace pls;
  const unsigned value_bits = 12;
  const std::size_t n = 10;

  const schemes::AgreeLanguage language(value_bits);
  const schemes::AgreeScheme scheme(language);
  auto g = std::make_shared<const graph::Graph>(graph::path(n));

  // 48 legal instances: everyone agrees on value v_i.
  std::vector<local::Configuration> configs;
  for (std::uint64_t i = 0; i < 48; ++i) {
    std::vector<local::State> states(n, language.encode_value(i * 85 + 1));
    configs.emplace_back(g, std::move(states));
  }
  std::vector<bool> left(n, false);
  for (std::size_t i = 0; i < n / 2; ++i) left[i] = true;
  const core::CrossingFamily family =
      core::make_family(scheme, std::move(configs), left);

  std::cout << "agree on a " << n << "-path, " << value_bits
            << "-bit values, " << family.instances.size()
            << " instances, cut at the middle edge\n\n";
  std::cout << "bit budget b | fooled pairs | distinct cut signatures\n";
  for (const std::size_t b : {0u, 1u, 2u, 3u, 4u, 6u, 8u, 12u}) {
    const core::SweepRow row = core::sweep_mask(scheme, family, b);
    std::cout.width(12);
    std::cout << b << " | ";
    std::cout.width(12);
    std::cout << row.fooled_pairs << " | "
              << core::distinct_boundary_signatures(family, b) << "\n";
  }

  std::cout << "\nreading the table: a fooled pair at budget b exhibits an "
               "illegal configuration on which every b-bit-certificate "
               "verifier accepts everywhere.  Fooled pairs persist until the "
               "budget covers the full value: certifying agreement on s-bit "
               "values requires ~s certificate bits (paper's Omega(s)).\n";

  // And the contrapositive: the actual scheme (full width) is never fooled.
  const core::SweepRow full = core::sweep_mask(scheme, family, value_bits);
  std::cout << "at b = " << value_bits << " (the scheme's proof size): "
            << full.fooled_pairs << " fooled pairs.\n";
  return full.fooled_pairs == 0 ? 0 : 1;
}
