// Self-stabilization demo — the fault-tolerance loop the paper motivates.
//
// A silent self-stabilizing spanning-tree protocol embeds proof-labeling
// certificates in its states.  Watch a run: legitimate -> transient faults ->
// 1-round local detection -> recovery -> silence.
#include <iostream>
#include <memory>

#include "graph/generators.hpp"
#include "selfstab/harness.hpp"
#include "selfstab/spanning_tree_ss.hpp"

int main() {
  using namespace pls;
  const graph::Graph g = graph::grid(5, 6);
  std::cout << "network: " << g.describe() << "\n\n";

  const selfstab::SpanningTreeProtocol protocol(g.n());
  std::vector<local::State> states = protocol.legitimate(g);
  std::cout << "legitimate state installed; local detectors firing: "
            << selfstab::SpanningTreeProtocol::detectors(g, states).size()
            << "\n";

  // Inject faults by hand and watch the round-by-round recovery.
  util::Rng rng(99);
  for (const graph::NodeIndex victim : {7u, 18u, 23u}) {
    selfstab::TreeState fake;
    fake.root = 1 + rng.below(g.max_id());
    fake.dist = rng.below(g.n());
    fake.parent = 1 + rng.below(g.max_id());
    states[victim] = selfstab::encode_tree_state(fake);
  }
  std::cout << "injected 3 faults; detectors now: "
            << selfstab::SpanningTreeProtocol::detectors(g, states).size()
            << " (detection latency: one verification round)\n\n";

  auto shared = std::make_shared<const graph::Graph>(g);
  local::SyncNetwork net(shared, states);
  std::size_t round = 0;
  while (true) {
    const std::size_t detectors =
        selfstab::SpanningTreeProtocol::detectors(g, net.states()).size();
    const local::RoundStats stats = net.step(protocol.step());
    ++round;
    std::cout << "round " << round << ": " << stats.changed_nodes
              << " nodes updated, " << detectors << " detectors\n";
    if (stats.changed_nodes == 0) break;
    if (round > 4 * g.n()) {
      std::cout << "did not converge!\n";
      return 1;
    }
  }
  const bool legitimate = net.states() == protocol.legitimate(g);
  std::cout << "\nconverged in " << round << " rounds; legitimate again: "
            << std::boolalpha << legitimate << "; silent: "
            << selfstab::SpanningTreeProtocol::detectors(g, net.states())
                   .empty()
            << "\n";

  // The aggregate experiment (what bench_selfstab sweeps).
  util::Rng rng2(7);
  const selfstab::FaultExperiment summary =
      selfstab::run_fault_experiment(g, 8, rng2);
  std::cout << "\nharness run with k=8 faults: " << summary.detectors_immediate
            << " immediate detectors, recovered in "
            << summary.stabilization_rounds << " rounds\n";
  return legitimate ? 0 : 1;
}
