// Scheme composition — certifying a conjunction of predicates.
//
// Certificates concatenate: a scheme for L1 and a scheme for L2 combine into
// a scheme for L1 ∧ L2 with p1 + p2 + O(1) bits.  Here: "the states describe
// a maximal independent set" AND "the states describe a dominating set"
// (every MIS is dominating, so MIS witnesses satisfy both — but the
// conjunction REJECTS configurations that are dominating without being
// independent, or independent without being dominating).
#include <iostream>
#include <memory>

#include "graph/generators.hpp"
#include "pls/adversary.hpp"
#include "pls/compose.hpp"
#include "schemes/lcl.hpp"

int main() {
  using namespace pls;

  const schemes::DominatingSetLanguage domset;
  const schemes::MisLanguage mis;
  const core::ConjunctionLanguage conjunction(domset, mis, /*witness=*/mis);
  const schemes::DominatingSetScheme domset_scheme(domset);
  const schemes::MisScheme mis_scheme(mis);
  const core::ConjunctionScheme scheme(conjunction, domset_scheme, mis_scheme);

  auto g = std::make_shared<const graph::Graph>(graph::grid(4, 6));
  std::cout << "network: " << g->describe() << "\n";
  std::cout << "conjunction language: " << conjunction.name() << "\n";

  util::Rng rng(11);
  const local::Configuration cfg = conjunction.sample_legal(g, rng);
  const core::Labeling certs = scheme.mark(cfg);
  std::cout << "certificate size: " << certs.max_bits()
            << " bits (two 0-bit halves + framing)\n";
  std::cout << "all accept on a legal MIS: " << std::boolalpha
            << core::run_verifier(scheme, cfg, certs).all_accept() << "\n\n";

  // A dominating set that is not independent: the conjunction catches the
  // violated conjunct even though the other conjunct is satisfied.
  std::vector<local::State> everyone(g->n(),
                                     schemes::MisLanguage::encode_member(true));
  const local::Configuration all_in(g, everyone);
  std::cout << "all-nodes-in-the-set: dominating? "
            << domset.contains(all_in) << ", independent+maximal? "
            << mis.contains(all_in) << ", conjunction? "
            << conjunction.contains(all_in) << "\n";
  const core::AttackReport attack = core::attack(scheme, all_in, rng);
  std::cout << "adversary defending it: best strategy '"
            << attack.best_strategy << "' still rejected at "
            << attack.min_rejections << " node(s)\n";
  return attack.min_rejections > 0 ? 0 : 1;
}
