// Spanning-tree certification — the paper's flagship example, in both
// encodings, including the adversarial direction: an adversary assigns
// arbitrary certificates to an illegal tree claim and still loses.
#include <iostream>
#include <memory>

#include "graph/generators.hpp"
#include "pls/adversary.hpp"
#include "schemes/common.hpp"
#include "schemes/spanning_tree.hpp"

int main() {
  using namespace pls;
  util::Rng rng(2026);

  auto g = std::make_shared<const graph::Graph>(
      graph::random_connected(24, 14, rng));
  std::cout << "network: " << g->describe() << "\n\n";

  // --- adjacency-list encoding (stl) --------------------------------------
  const schemes::StlLanguage stl;
  const schemes::StlScheme stl_scheme(stl);
  const local::Configuration tree = stl.sample_legal(g, rng);
  const core::Labeling certs = stl_scheme.mark(tree);
  std::cout << "[stl] certified a spanning tree with "
            << certs.max_bits() << "-bit certificates; all nodes accept: "
            << std::boolalpha
            << core::run_verifier(stl_scheme, tree, certs).all_accept()
            << "\n";

  // Claim the whole graph as "tree": illegal, and no prover can hide it.
  std::vector<bool> everything(g->m(), true);
  const local::Configuration bogus = stl.make_from_mask(g, everything);
  const core::AttackReport attack =
      core::attack(stl_scheme, bogus, rng);
  std::cout << "[stl] adversary claiming the full graph is a tree: best "
               "strategy '"
            << attack.best_strategy << "' still rejected at "
            << attack.min_rejections << " node(s)\n\n";

  // --- parent-pointer encoding (stp) ---------------------------------------
  const schemes::StpLanguage stp;
  const schemes::StpScheme stp_scheme(stp);
  const local::Configuration ptr_tree = stp.make_tree(g, 0);
  const core::Labeling ptr_certs = stp_scheme.mark(ptr_tree);
  std::cout << "[stp] pointer encoding certified with "
            << ptr_certs.max_bits() << "-bit certificates; all accept: "
            << core::run_verifier(stp_scheme, ptr_tree, ptr_certs).all_accept()
            << "\n";

  // Cut the tree in the middle: a second root appears.
  const local::Configuration forest =
      ptr_tree.with_state(12, schemes::encode_pointer(std::nullopt));
  if (!stp.contains(forest)) {
    const core::AttackReport a2 = core::attack(stp_scheme, forest, rng);
    std::cout << "[stp] adversary defending a 2-tree forest: rejected at "
              << a2.min_rejections << " node(s)\n";
  }
  return 0;
}
