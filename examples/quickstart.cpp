// Quickstart: the proof-labeling-scheme workflow in ~50 lines.
//
//   1. Build a network and a configuration (here: a leader election result).
//   2. Ask the prover (marker) for certificates.
//   3. Run the 1-round verifier at every node: all accept.
//   4. Corrupt the configuration, keep the certificates: someone rejects.
//
// Build:  cmake --build build --target quickstart
// Run:    ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "graph/generators.hpp"
#include "pls/engine.hpp"
#include "schemes/leader.hpp"

int main() {
  using namespace pls;

  // A 4x4 grid network; node 5 won the (already-run) leader election.
  auto g = std::make_shared<const graph::Graph>(graph::grid(4, 4));
  const schemes::LeaderLanguage language;
  const local::Configuration cfg = language.make_with_leader(g, 5);
  std::cout << "network: " << g->describe() << "\n";
  std::cout << "legal configuration? " << std::boolalpha
            << language.contains(cfg) << "\n";

  // The scheme: Theta(log n)-bit certificates (root id, parent id, distance).
  const schemes::LeaderScheme scheme(language);
  const core::Labeling certificates = scheme.mark(cfg);
  std::cout << "certificate size: " << certificates.max_bits()
            << " bits per node (bound: "
            << scheme.proof_size_bound(g->n(), 1) << ")\n";

  // One verification round: every node talks to its neighbors once.
  const core::Verdict ok = core::run_verifier(scheme, cfg, certificates);
  std::cout << "verification on the legal configuration: "
            << ok.rejections() << " rejections\n";

  // A transient fault marks a second leader.  The old certificates cannot
  // cover for it: at least one node rejects and could trigger recovery.
  const local::Configuration faulty = cfg.with_state(
      12, schemes::LeaderLanguage::encode_flag(true));
  const core::Verdict bad = core::run_verifier(scheme, faulty, certificates);
  std::cout << "verification after the fault: " << bad.rejections()
            << " rejections at nodes:";
  for (const graph::NodeIndex v : bad.rejecting_nodes())
    std::cout << " " << g->id(v);
  std::cout << "\n";
  return bad.rejections() > 0 ? 0 : 1;
}
